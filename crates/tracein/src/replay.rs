//! Replaying recorded traces through the four timing cores.
//!
//! The conventional cores (`inorder`, `dep`, `ooo`) are trace-driven:
//! they consume the recorded stream directly, so a replay never touches
//! the functional executor. The braid core runs the *translated* program,
//! whose instruction indices differ from the recorded original, so its
//! replay translates the embedded program, statically vets the result
//! with the braid-contract checker, and re-derives the committed stream
//! under the file's recorded fuel — exactly what `run_tier` does for a
//! live run, which keeps replayed and live braid cycle counts identical.

use braid_core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid_core::processor::CoreConfig;
use braid_core::{Machine, SimReport};
use braid_sweep::digest::ContentDigest;

use crate::error::ReplayError;
use crate::format::TraceFile;

/// Replays `file` on `core`, returning the full timing report.
///
/// # Errors
///
/// Propagates timing-simulation failures; for the braid core also
/// translation, braid-contract and functional re-derivation failures.
pub fn replay(file: &TraceFile, core: &CoreConfig) -> Result<SimReport, ReplayError> {
    match core {
        CoreConfig::InOrder(c) => {
            Ok(InOrderCore::new(c.clone()).run(&file.program, &file.trace)?)
        }
        CoreConfig::Dep(c) => {
            Ok(DepSteerCore::new(c.clone()).run(&file.program, &file.trace)?)
        }
        CoreConfig::Ooo(c) => Ok(OooCore::new(c.clone()).run(&file.program, &file.trace)?),
        CoreConfig::Braid(c) => {
            let tconfig =
                braid_compiler::TranslatorConfig { self_check: false, ..Default::default() };
            let translation = braid_compiler::translate(&file.program, &tconfig)
                .map_err(ReplayError::Translate)?;
            let report = translation.check(
                &file.program,
                &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
            );
            if report.has_errors() {
                return Err(ReplayError::Check(Box::new(report)));
            }
            let translated = &translation.program;
            let mut m = Machine::new(translated);
            let trace = m.run(translated, file.fuel).map_err(ReplayError::Exec)?;
            Ok(BraidCore::new(c.clone()).run(translated, &trace)?)
        }
        // `CoreConfig` is non-exhaustive; a future kind needs an explicit
        // replay arm before traces can drive it.
        other => Err(ReplayError::UnsupportedCore(other.name().to_string())),
    }
}

/// Folds already-replayed per-core reports — plus the trace's own content
/// digest — into the canonical cycle digest. Callers that need the
/// reports anyway (the `trace-replay` CLI) use this to avoid replaying
/// twice; [`cycle_digest`] is the one-call form.
///
/// # Errors
///
/// Propagates trace-serialization failures from the embedded digest.
pub fn cycle_digest_of(
    file: &TraceFile,
    reports: &[(&str, &SimReport)],
) -> Result<String, ReplayError> {
    let mut d = ContentDigest::new().field("trace", file.digest().map_err(ReplayError::Trace)?);
    for (name, r) in reports {
        d = d.field(name, format!("{}c:{}i", r.cycles, r.instructions));
    }
    Ok(d.finish())
}

/// Replays `file` on every core in `cores` and folds the cycle and
/// instruction counts — plus the trace's own content digest — into one
/// canonical digest string. Two replays of the same trace must agree on
/// this byte-for-byte; it is the determinism witness the tier-1 smoke
/// test and braidd's cache key compare.
///
/// # Errors
///
/// As for [`replay`], for whichever core fails first.
pub fn cycle_digest(file: &TraceFile, cores: &[CoreConfig]) -> Result<String, ReplayError> {
    let mut reports = Vec::with_capacity(cores.len());
    for core in cores {
        reports.push((core.name(), replay(file, core)?));
    }
    let borrowed: Vec<(&str, &SimReport)> =
        reports.iter().map(|(n, r)| (*n, r)).collect();
    cycle_digest_of(file, &borrowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
    use braid_isa::asm::assemble;

    fn four_cores() -> Vec<CoreConfig> {
        vec![
            CoreConfig::InOrder(InOrderConfig::paper_8wide()),
            CoreConfig::Dep(DepConfig::paper_8wide()),
            CoreConfig::Ooo(OooConfig::paper_8wide()),
            CoreConfig::Braid(BraidConfig::paper_default()),
        ]
    }

    fn sample() -> TraceFile {
        let mut p = assemble(
            r#"
                addi r0, #64, r1
            loop:
                ldq  r2, 0(r3) @global:1
                mulq r2, r2, r4
                addq r4, r5, r5
                addi r3, #8, r3
                subi r1, #1, r1
                bne  r1, loop
                halt
                .data 0x1000 1 2 3 4 5 6 7 8
            "#,
        )
        .unwrap();
        p.name = "replay_sample".into();
        TraceFile::record(&p, 100_000).unwrap()
    }

    #[test]
    fn all_four_cores_replay_a_recorded_trace() {
        let f = sample();
        for core in four_cores() {
            let r = replay(&f, &core).unwrap_or_else(|e| panic!("{}: {e}", core.name()));
            assert!(r.cycles > 0, "{} must make progress", core.name());
            assert!(r.instructions > 0);
        }
    }

    #[test]
    fn replay_matches_a_live_run() {
        // A replayed trace must produce the same cycle count as running
        // the program live through the one-call pipelines.
        let f = sample();
        for core in four_cores() {
            let replayed = replay(&f, &core).unwrap();
            let live = braid_core::run_tier(
                &f.program,
                &core,
                braid_core::Tier::Full,
                f.fuel,
                &braid_core::SamplingConfig::default(),
            )
            .unwrap();
            let live_cycles = match live {
                braid_core::processor::TierReport::Full(r) => r.cycles,
                _ => unreachable!("Tier::Full returns Full"),
            };
            assert_eq!(replayed.cycles, live_cycles, "{} replay != live", core.name());
        }
    }

    #[test]
    fn cycle_digest_is_deterministic_across_runs_and_serialization() {
        let f = sample();
        let cores = four_cores();
        let d1 = cycle_digest(&f, &cores).unwrap();
        let d2 = cycle_digest(&f, &cores).unwrap();
        assert_eq!(d1, d2, "two replays of the same file must agree");
        // Round-tripping through the binary form must not perturb it.
        let back = TraceFile::from_binary(&f.to_binary().unwrap()).unwrap();
        assert_eq!(cycle_digest(&back, &cores).unwrap(), d1);
        assert_eq!(d1.len(), 16, "canonical 16-hex-digit rendering");
    }
}
