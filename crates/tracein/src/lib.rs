//! # braid-tracein: trace-file recording, ingestion, and replay
//!
//! The workload frontier's second leg: a **documented, versioned trace
//! format** (self-contained — program container plus committed dynamic
//! stream) and a replayer that drives all four timing cores, so workloads
//! can arrive as recorded traces instead of assembly or braid-lang
//! source.
//!
//! * [`format`] — the [`TraceFile`] value with its two serializations:
//!   a compact framed binary (crash-safe, the braidd/cache interchange
//!   form) and human-inspectable JSON-lines.
//! * [`replay`] — [`replay()`] through any [`CoreConfig`], and
//!   [`cycle_digest`], the canonical determinism witness (two replays of
//!   one file must produce byte-identical digests).
//! * [`error`] — structured [`TraceError`]/[`ReplayError`]; hostile bytes
//!   (truncated, flipped, spliced) always surface as typed errors, never
//!   panics.
//!
//! ```
//! use braid_isa::asm::assemble;
//! use braid_tracein::TraceFile;
//!
//! let program = assemble("addi r0, #3, r1\nhalt")?;
//! let recorded = TraceFile::record(&program, 1000)?;
//! let bytes = recorded.to_binary()?;
//! let back = TraceFile::from_binary(&bytes)?;
//! assert_eq!(back.trace.entries, recorded.trace.entries);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`CoreConfig`]: braid_core::processor::CoreConfig

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod replay;

pub use error::{ReplayError, TraceError};
pub use format::{TraceFile, FORMAT_VERSION, TRACE_MAGIC};
pub use replay::{cycle_digest, cycle_digest_of, replay};
