//! The metrics registry: per-phase and per-class histograms plus named
//! event counters, rendered as deterministic-keyed JSON.
//!
//! Aggregation preserves the span-level conservation invariant: a
//! recorded span bumps **every** phase histogram exactly once (zero
//! charges included) and one class histogram once, so
//!
//! - each phase histogram's sample count equals the span count, and
//! - the phase histograms' value sums add up to the class histograms'
//!   value sums (both are the same `total_us` population).
//!
//! [`Registry::conserved`] checks both, and the rendered document carries
//! the verdict as a `conserved` boolean so a remote client (or a CI
//! smoke) can assert the invariant without re-deriving it.
//!
//! ## Determinism contract
//!
//! The JSON key set and ordering are fixed; every host-time *value* lives
//! under a key ending in `_us` (`mean_us`, `p50_us`, ...). Counters
//! (`count`, `spans`, `status`, `events`) are deterministic for a
//! deterministic request sequence, so stripping `_us`-suffixed keys
//! yields a byte-comparable document — the schema test pins this.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use braid_sweep::json::Json;
use braid_uarch::Histogram;

use crate::log::TraceLog;
use crate::span::{Phase, RequestSpan, SpanRecord};

#[derive(Default)]
struct RegistryInner {
    spans: u64,
    status: BTreeMap<&'static str, u64>,
    phases: [Histogram; Phase::COUNT],
    classes: BTreeMap<&'static str, Histogram>,
    events: BTreeMap<String, u64>,
}

/// Thread-safe metrics aggregation over finished spans and named events.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// Renders one histogram of microsecond samples as the standard summary
/// object: `count` (deterministic) plus `total_us`, `mean_us`, `p50_us`,
/// `p95_us`, `p99_us`, `max_us` (host time, `0` when empty). Shared by
/// the registry, the sweep timing summary, and the loadgen report so
/// every latency block in the system reads the same.
pub fn hist_summary_json(h: &Histogram) -> Json {
    let pct = |p: f64| Json::Int(h.percentile_checked(p).unwrap_or(0));
    Json::Obj(vec![
        ("count".into(), Json::Int(h.total())),
        ("total_us".into(), Json::Int(h.sum() as u64)),
        ("mean_us".into(), Json::Float(h.mean())),
        ("p50_us".into(), pct(0.50)),
        ("p95_us".into(), pct(0.95)),
        ("p99_us".into(), pct(0.99)),
        ("max_us".into(), Json::Int(h.max().unwrap_or(0))),
    ])
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Poison recovery: every mutation is a handful of counter and
        // histogram bumps; state behind a panicked thread is coherent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Aggregates one finished span: every phase histogram records its
    /// (possibly zero) charge, the span's class records the total.
    pub fn record(&self, rec: &SpanRecord) {
        let mut inner = self.lock();
        inner.spans += 1;
        *inner.status.entry(rec.status).or_insert(0) += 1;
        for (hist, us) in inner.phases.iter_mut().zip(rec.phase_us) {
            hist.record(us);
        }
        inner.classes.entry(rec.kind).or_default().record(rec.total_us);
    }

    /// Bumps a named structured-event counter (e.g. `cache-demoted`).
    pub fn record_event(&self, kind: &str) {
        *self.lock().events.entry(kind.to_string()).or_insert(0) += 1;
    }

    /// Spans recorded so far.
    pub fn spans(&self) -> u64 {
        self.lock().spans
    }

    /// Count of one named event (`0` if never recorded).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.lock().events.get(kind).copied().unwrap_or(0)
    }

    /// The conservation invariant over the aggregate: every phase
    /// histogram holds exactly one sample per span, and phase time sums
    /// to class time (the same `total_us` population seen two ways).
    pub fn conserved(&self) -> bool {
        let inner = self.lock();
        let counts_ok = inner.phases.iter().all(|h| h.total() == inner.spans);
        let phase_sum: u128 = inner.phases.iter().map(Histogram::sum).sum();
        let class_sum: u128 = inner.classes.values().map(Histogram::sum).sum();
        counts_ok && phase_sum == class_sum
    }

    /// Renders the registry: `spans`, `status`, `phases` (lifetime
    /// order), `classes` (sorted), `events` (sorted), `conserved`. See
    /// the module docs for the determinism contract.
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        let status = inner.status.iter().map(|(k, n)| ((*k).to_string(), Json::Int(*n))).collect();
        let phases = Phase::ALL
            .iter()
            .map(|p| (p.key().to_string(), hist_summary_json(&inner.phases[*p as usize])))
            .collect();
        let classes = inner
            .classes
            .iter()
            .map(|(k, h)| ((*k).to_string(), hist_summary_json(h)))
            .collect();
        let events = inner.events.iter().map(|(k, n)| (k.clone(), Json::Int(*n))).collect();
        let counts_ok = inner.phases.iter().all(|h| h.total() == inner.spans);
        let phase_sum: u128 = inner.phases.iter().map(Histogram::sum).sum();
        let class_sum: u128 = inner.classes.values().map(Histogram::sum).sum();
        Json::Obj(vec![
            ("spans".into(), Json::Int(inner.spans)),
            ("status".into(), Json::Obj(status)),
            ("phases".into(), Json::Obj(phases)),
            ("classes".into(), Json::Obj(classes)),
            ("events".into(), Json::Obj(events)),
            ("conserved".into(), Json::Bool(counts_ok && phase_sum == class_sum)),
        ])
    }
}

/// The registry and the optional span log behind one handle — what the
/// serving stack threads through readers, pool workers, writers, and the
/// cache. The registry is always on (it is cheap); the log is armed by
/// `braidd --trace-log`.
#[derive(Default)]
pub struct TraceHub {
    registry: Registry,
    log: Option<TraceLog>,
}

impl TraceHub {
    /// A hub over a fresh registry, exporting spans to `log` when given.
    pub fn new(log: Option<TraceLog>) -> TraceHub {
        TraceHub { registry: Registry::new(), log }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span log's path, when one is armed.
    pub fn log_path(&self) -> Option<&std::path::Path> {
        self.log.as_ref().map(TraceLog::path)
    }

    /// Finishes a span: aggregates it into the registry and appends it
    /// to the span log when one is armed.
    pub fn complete(&self, span: RequestSpan) {
        let rec = span.finish();
        self.registry.record(&rec);
        if let Some(log) = &self.log {
            log.write(&rec.to_json());
        }
    }

    /// Emits a structured event: counts it in the registry and appends
    /// `{"event":kind, ...fields}` to the span log when armed.
    pub fn event(&self, kind: &str, fields: Vec<(String, Json)>) {
        self.registry.record_event(kind);
        if let Some(log) = &self.log {
            let mut doc = vec![("event".to_string(), Json::Str(kind.into()))];
            doc.extend(fields);
            log.write(&Json::Obj(doc));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::RequestSpan;

    fn span(kind: &'static str, status: &'static str) -> SpanRecord {
        let mut s = RequestSpan::begin();
        s.describe(crate::span::next_trace_id(), kind, 1);
        s.set_status(status);
        s.mark(Phase::Read);
        s.mark(Phase::Execute);
        s.finish()
    }

    #[test]
    fn aggregation_conserves_phases_and_classes() {
        let r = Registry::new();
        assert!(r.conserved(), "empty registry is trivially conserved");
        r.record(&span("simulate", "ok"));
        r.record(&span("simulate", "ok"));
        r.record(&span("check", "error"));
        assert_eq!(r.spans(), 3);
        assert!(r.conserved());
        let doc = r.to_json();
        assert_eq!(doc.get("conserved").and_then(Json::as_bool), Some(true));
        for p in Phase::ALL {
            let count = doc
                .get("phases")
                .and_then(|o| o.get(p.key()))
                .and_then(|o| o.get("count"))
                .and_then(Json::as_u64);
            assert_eq!(count, Some(3), "phase {} counts every span", p.key());
        }
        let sim = doc.get("classes").and_then(|c| c.get("simulate")).expect("simulate class");
        assert_eq!(sim.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("status").and_then(|s| s.get("error")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn summary_fields_split_into_deterministic_and_host_time() {
        let h: Histogram = (1..=100).collect();
        let doc = hist_summary_json(&h);
        let Json::Obj(fields) = &doc else { panic!("summary is an object") };
        for (key, _) in fields {
            assert!(
                key == "count" || key.ends_with("_us"),
                "host-time fields must end in _us, counters must be `count`: {key}"
            );
        }
        assert_eq!(doc.get("p95_us").and_then(Json::as_u64), Some(95));
        assert_eq!(doc.get("p99_us").and_then(Json::as_u64), Some(99));
        // Empty histograms render zeros, not nulls, keeping the schema fixed.
        let empty = hist_summary_json(&Histogram::new());
        assert_eq!(empty.get("p99_us").and_then(Json::as_u64), Some(0));
        assert_eq!(empty.get("max_us").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn events_count_and_render_sorted() {
        let r = Registry::new();
        r.record_event("cache-demoted");
        r.record_event("cache-quarantined");
        r.record_event("cache-quarantined");
        assert_eq!(r.event_count("cache-quarantined"), 2);
        assert_eq!(r.event_count("nonesuch"), 0);
        let doc = r.to_json();
        let events = doc.get("events").expect("events object");
        assert_eq!(events.get("cache-demoted").and_then(Json::as_u64), Some(1));
        assert_eq!(events.get("cache-quarantined").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn hub_without_log_still_aggregates() {
        let hub = TraceHub::new(None);
        let mut s = RequestSpan::begin();
        s.describe("x".into(), "stats", 9);
        s.mark(Phase::Read);
        hub.complete(s);
        hub.event("cache-demoted", vec![]);
        assert_eq!(hub.registry().spans(), 1);
        assert_eq!(hub.registry().event_count("cache-demoted"), 1);
        assert!(hub.log_path().is_none());
    }
}
