//! Sweep timing summaries: per-point host timing, stragglers, and
//! imbalance through the same histogram summaries as the service.
//!
//! The sweep engine already keeps per-point `host_nanos` in memory (never
//! serialized — aggregates must stay byte-identical across thread
//! counts). This module turns those into the operational questions a
//! sweep operator actually asks: where did the wall-clock go, which point
//! was the straggler, and how imbalanced was the shard? Both clock
//! domains appear side by side: `host_us` (wall-clock, nondeterministic)
//! and `cycles` (simulated work, deterministic).

use braid_sweep::json::Json;
use braid_sweep::SweepRun;
use braid_uarch::Histogram;

use crate::registry::hist_summary_json;

/// Summarizes per-point timings given `(key, host_nanos, cycles)` tuples
/// — the core of [`sweep_timing`], split out so callers (and tests) can
/// feed synthetic points without building a full sweep.
///
/// Fields: `points`, `host_us` (summary), `cycles`
/// (`count`/`total`/`mean`/`max`, deterministic), `straggler` (the
/// slowest point by host time: `key`, `host_us`, `cycles`; `null` when
/// empty), and `imbalance_x` (max/mean host time — `1.0` means perfectly
/// balanced, `N` means the straggler cost `N×` the average point).
pub fn point_timing<I>(points: I) -> Json
where
    I: IntoIterator<Item = (String, u64, u64)>,
{
    let mut host = Histogram::new();
    let mut cycles = Histogram::new();
    let mut straggler: Option<(String, u64, u64)> = None;
    for (key, host_nanos, point_cycles) in points {
        let host_us = host_nanos / 1_000;
        host.record(host_us);
        cycles.record(point_cycles);
        let slower = straggler.as_ref().is_none_or(|(_, s, _)| host_us > *s);
        if slower {
            straggler = Some((key, host_us, point_cycles));
        }
    }
    let imbalance = if host.total() == 0 || host.mean() == 0.0 {
        1.0
    } else {
        host.max().unwrap_or(0) as f64 / host.mean()
    };
    let straggler_json = straggler.map_or(Json::Null, |(key, host_us, point_cycles)| {
        Json::Obj(vec![
            ("key".into(), Json::Str(key)),
            ("host_us".into(), Json::Int(host_us)),
            ("cycles".into(), Json::Int(point_cycles)),
        ])
    });
    Json::Obj(vec![
        ("points".into(), Json::Int(host.total())),
        ("host_us".into(), hist_summary_json(&host)),
        (
            "cycles".into(),
            Json::Obj(vec![
                ("count".into(), Json::Int(cycles.total())),
                ("total".into(), Json::Int(cycles.sum() as u64)),
                ("mean".into(), Json::Float(cycles.mean())),
                ("max".into(), Json::Int(cycles.max().unwrap_or(0))),
            ]),
        ),
        ("straggler".into(), straggler_json),
        ("imbalance_x".into(), Json::Float(imbalance)),
    ])
}

/// [`point_timing`] over a finished [`SweepRun`]'s successful points
/// (failed points have no timing; points reused from a snapshot carry
/// zero host time and are excluded so they do not fake perfect balance).
pub fn sweep_timing(run: &SweepRun) -> Json {
    point_timing(run.outcomes.iter().filter_map(|o| {
        let stats = o.stats.as_ref().ok()?;
        if stats.host_nanos == 0 {
            return None;
        }
        Some((o.point.key(), stats.host_nanos, stats.cycles))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_and_imbalance_identify_the_slow_point() {
        let doc = point_timing(vec![
            ("a:braid:w8".to_string(), 1_000_000, 500),
            ("b:ooo:w8".to_string(), 3_000_000, 700),
            ("c:dep:w4".to_string(), 2_000_000, 600),
        ]);
        assert_eq!(doc.get("points").and_then(Json::as_u64), Some(3));
        let s = doc.get("straggler").expect("straggler");
        assert_eq!(s.get("key").and_then(Json::as_str), Some("b:ooo:w8"));
        assert_eq!(s.get("host_us").and_then(Json::as_u64), Some(3_000));
        assert_eq!(s.get("cycles").and_then(Json::as_u64), Some(700));
        // max 3000µs over mean 2000µs = 1.5× imbalance.
        let imb = doc.get("imbalance_x").and_then(Json::as_f64).expect("imbalance");
        assert!((imb - 1.5).abs() < 1e-9, "{imb}");
        // The cycle block is the deterministic clock domain.
        let cycles = doc.get("cycles").expect("cycles");
        assert_eq!(cycles.get("total").and_then(Json::as_u64), Some(1_800));
        assert_eq!(cycles.get("max").and_then(Json::as_u64), Some(700));
    }

    #[test]
    fn empty_input_renders_a_null_straggler() {
        let doc = point_timing(Vec::new());
        assert_eq!(doc.get("points").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("straggler"), Some(&Json::Null));
        assert_eq!(doc.get("imbalance_x").and_then(Json::as_f64), Some(1.0));
    }
}
