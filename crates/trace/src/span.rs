//! Request spans: a phase timer whose charges sum to the total by
//! construction.
//!
//! A [`RequestSpan`] is a stopwatch with seven labelled buckets. Every
//! [`RequestSpan::mark`] charges the time since the previous mark to one
//! [`Phase`]; because consecutive intervals telescope, the sum of the
//! buckets always equals the span's first-to-last-mark total — the same
//! conservation shape as the engine's CPI stack, where every cycle lands
//! in exactly one stall cause. [`RequestSpan::finish`] checks the
//! invariant with a debug assertion and freezes the span into a
//! [`SpanRecord`] for the registry and the span log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use braid_sweep::json::Json;

/// One phase of a served request's lifetime. The seven phases are
/// exhaustive and non-overlapping: every nanosecond between a span's
/// first and last mark is charged to exactly one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for and reading the request line off the socket (includes
    /// wire wait, so an idle connection charges its think time here).
    Read,
    /// Parsing and validating the request line.
    Parse,
    /// Waiting in the job queue for a pool worker (zero for inline and
    /// shed requests, which never queue).
    QueueWait,
    /// Building the cache key and probing the result cache (both tiers).
    CacheProbe,
    /// Running the simulation / translation / analysis itself.
    Execute,
    /// Rendering the payload, publishing it to the cache, and splicing
    /// the response frame.
    Serialize,
    /// Writing the response line to the socket, including any wait in
    /// the writer's reorder buffer behind earlier responses.
    Write,
}

impl Phase {
    /// Number of phases (the span's bucket count).
    pub const COUNT: usize = 7;

    /// Every phase, in lifetime order — the canonical rendering order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Read,
        Phase::Parse,
        Phase::QueueWait,
        Phase::CacheProbe,
        Phase::Execute,
        Phase::Serialize,
        Phase::Write,
    ];

    /// Stable wire key for this phase (`metrics` response and span log).
    pub fn key(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Parse => "parse",
            Phase::QueueWait => "queue_wait",
            Phase::CacheProbe => "cache_probe",
            Phase::Execute => "execute",
            Phase::Serialize => "serialize",
            Phase::Write => "write",
        }
    }
}

/// Process-wide counter behind [`next_trace_id`].
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Generates a trace ID for a request that did not supply one. Unique
/// within the process (`t-<seq>`); clients wanting cross-system
/// correlation supply their own via the protocol's `trace` field.
pub fn next_trace_id() -> String {
    format!("t-{:08x}", TRACE_SEQ.fetch_add(1, Ordering::Relaxed) + 1)
}

/// A live request span: identity plus the running phase buckets.
///
/// The span is created before the request is even read (so the `read`
/// phase starts at the true beginning), described once parsing yields an
/// identity, marked at every phase boundary, and finished by whichever
/// thread writes the response. It is `Send` and travels reader → pool
/// worker → writer with the request.
#[derive(Debug)]
pub struct RequestSpan {
    trace: String,
    kind: &'static str,
    id: u64,
    started: Instant,
    last: Instant,
    nanos: [u64; Phase::COUNT],
    status: &'static str,
    cache: Option<&'static str>,
    cycles: u64,
}

impl RequestSpan {
    /// Starts a span now, identity not yet known (see
    /// [`RequestSpan::describe`]).
    pub fn begin() -> RequestSpan {
        let now = Instant::now();
        RequestSpan {
            trace: String::new(),
            kind: "",
            id: 0,
            started: now,
            last: now,
            nanos: [0; Phase::COUNT],
            status: "ok",
            cache: None,
            cycles: 0,
        }
    }

    /// Attaches the request's identity once parsing produced one.
    pub fn describe(&mut self, trace: String, kind: &'static str, id: u64) {
        self.trace = trace;
        self.kind = kind;
        self.id = id;
    }

    /// Charges the time since the previous mark (or the start) to
    /// `phase`. Marking the same or different phases back-to-back is
    /// fine — a zero-length charge keeps the buckets exhaustive without
    /// branching at call sites.
    pub fn mark(&mut self, phase: Phase) {
        let now = Instant::now();
        self.nanos[phase as usize] += (now - self.last).as_nanos() as u64;
        self.last = now;
    }

    /// Sets the terminal status (`ok`, `error`, or `retry`; `ok` is the
    /// default).
    pub fn set_status(&mut self, status: &'static str) {
        self.status = status;
    }

    /// Records whether the result cache answered (`hit` / `miss`).
    pub fn set_cache(&mut self, outcome: &'static str) {
        self.cache = Some(outcome);
    }

    /// Adds simulated cycles attributed to this request — the engine
    /// clock domain, deterministic unlike the host-time buckets.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    /// The span's trace ID.
    pub fn trace_id(&self) -> &str {
        &self.trace
    }

    /// Freezes the span. Debug builds assert the conservation invariant:
    /// the phase buckets sum exactly to the first-to-last-mark total
    /// (true by construction — consecutive charges telescope).
    pub fn finish(self) -> SpanRecord {
        let total_nanos = (self.last - self.started).as_nanos() as u64;
        debug_assert_eq!(
            self.nanos.iter().sum::<u64>(),
            total_nanos,
            "span phase charges must conserve the total"
        );
        let mut phase_us = [0u64; Phase::COUNT];
        for (us, ns) in phase_us.iter_mut().zip(self.nanos) {
            *us = ns / 1_000;
        }
        // The serialized total is the sum of the *rounded* phase values,
        // so conservation survives the nanos→micros conversion and holds
        // for every consumer of the record, aggregate or per-span.
        let total_us = phase_us.iter().sum();
        SpanRecord {
            trace: self.trace,
            kind: self.kind,
            id: self.id,
            status: self.status,
            cache: self.cache,
            cycles: self.cycles,
            phase_us,
            total_us,
        }
    }
}

/// A finished span: what the registry aggregates and the span log writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace ID (client-supplied or generated).
    pub trace: String,
    /// Request kind (`simulate`, `translate`, ... or an event source).
    pub kind: &'static str,
    /// The client-chosen request id.
    pub id: u64,
    /// Terminal status: `ok`, `error`, or `retry`.
    pub status: &'static str,
    /// Cache outcome for compute requests (`hit` / `miss`), `None` for
    /// requests that never probe the cache.
    pub cache: Option<&'static str>,
    /// Simulated cycles attributed to the request (engine clock domain;
    /// `0` when nothing was simulated).
    pub cycles: u64,
    /// Host microseconds charged per phase, indexed like [`Phase::ALL`].
    pub phase_us: [u64; Phase::COUNT],
    /// Sum of `phase_us` — equals the span total by construction.
    pub total_us: u64,
}

impl SpanRecord {
    /// Renders the record as one span-log JSON document. Every host-time
    /// field ends in `_us`; `trace`, `kind`, `id`, `status`, `cache`, and
    /// `cycles` are the deterministic remainder.
    pub fn to_json(&self) -> Json {
        let phases = Phase::ALL
            .iter()
            .map(|p| (p.key().to_string(), Json::Int(self.phase_us[*p as usize])))
            .collect();
        let mut doc = vec![
            ("event".into(), Json::Str("span".into())),
            ("trace".into(), Json::Str(self.trace.clone())),
            ("id".into(), Json::Int(self.id)),
            ("kind".into(), Json::Str(self.kind.into())),
            ("status".into(), Json::Str(self.status.into())),
        ];
        if let Some(cache) = self.cache {
            doc.push(("cache".into(), Json::Str(cache.into())));
        }
        doc.push(("cycles".into(), Json::Int(self.cycles)));
        doc.push(("phases_us".into(), Json::Obj(phases)));
        doc.push(("total_us".into(), Json::Int(self.total_us)));
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_keys_are_stable_and_ordered() {
        let keys: Vec<&str> = Phase::ALL.iter().map(|p| p.key()).collect();
        assert_eq!(
            keys,
            ["read", "parse", "queue_wait", "cache_probe", "execute", "serialize", "write"]
        );
        // The enum discriminants index the bucket array in ALL order.
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }

    #[test]
    fn marks_conserve_the_total() {
        let mut span = RequestSpan::begin();
        span.describe("t-test".into(), "simulate", 3);
        span.mark(Phase::Read);
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.mark(Phase::Execute);
        span.mark(Phase::Execute); // double-mark: zero-length charge
        span.mark(Phase::Write);
        let rec = span.finish(); // debug_assert inside checks exact nanos
        assert_eq!(rec.total_us, rec.phase_us.iter().sum::<u64>());
        assert!(rec.phase_us[Phase::Execute as usize] >= 2_000, "sleep charged to execute");
        assert_eq!(rec.phase_us[Phase::QueueWait as usize], 0, "unmarked phase stays zero");
        assert_eq!((rec.trace.as_str(), rec.kind, rec.id), ("t-test", "simulate", 3));
    }

    #[test]
    fn record_json_has_all_phases_and_conserves() {
        let mut span = RequestSpan::begin();
        span.describe("abc".into(), "check", 1);
        span.set_cache("miss");
        span.add_cycles(1234);
        span.mark(Phase::Read);
        span.mark(Phase::Serialize);
        let doc = span.finish().to_json();
        let phases = doc.get("phases_us").expect("phases object");
        let mut sum = 0;
        for p in Phase::ALL {
            sum += phases.get(p.key()).and_then(Json::as_u64).expect("every phase present");
        }
        assert_eq!(doc.get("total_us").and_then(Json::as_u64), Some(sum));
        assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some(1234));
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("span"));
    }

    #[test]
    fn generated_trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with("t-"), "{a}");
    }
}
