//! The span log: a thread-safe JSON-lines export of spans and events.
//!
//! One compact JSON document per line, flushed per line so the log is
//! useful even after a `kill -9` — the same crash-survivability bar the
//! disk cache holds itself to. Writing is best-effort: a full disk must
//! never take the service down for the sake of its own diagnostics, so
//! I/O errors are counted and swallowed, not propagated.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use braid_sweep::json::Json;

/// A JSON-lines trace export (see the module docs).
pub struct TraceLog {
    path: PathBuf,
    file: Mutex<BufWriter<File>>,
    errors: AtomicU64,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog").field("path", &self.path).finish_non_exhaustive()
    }
}

impl TraceLog {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created — callers
    /// treat an unusable `--trace-log` as a startup error, not a silent
    /// no-op.
    pub fn create(path: &Path) -> io::Result<TraceLog> {
        let file = File::create(path)?;
        Ok(TraceLog {
            path: path.to_path_buf(),
            file: Mutex::new(BufWriter::new(file)),
            errors: AtomicU64::new(0),
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one document as a line and flushes it. Best-effort: write
    /// failures bump [`TraceLog::write_errors`] and are otherwise
    /// swallowed.
    pub fn write(&self, doc: &Json) {
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let line = doc.compact();
        if writeln!(file, "{line}").and_then(|()| file.flush()).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lines lost to I/O errors since creation.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_one_parseable_line_per_document() {
        let path = std::env::temp_dir()
            .join(format!("braid-trace-log-test-{}.jsonl", std::process::id()));
        let log = TraceLog::create(&path).expect("create log");
        log.write(&Json::Obj(vec![("event".into(), Json::Str("span".into()))]));
        log.write(&Json::Obj(vec![("event".into(), Json::Str("cache-demoted".into()))]));
        assert_eq!(log.write_errors(), 0);
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            braid_sweep::json::parse(line).expect("every line parses");
        }
        assert!(text.contains("cache-demoted"));
        let _ = std::fs::remove_file(&path);
    }
}
