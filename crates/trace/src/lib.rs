//! # braid-trace: structured tracing and service metrics
//!
//! The cores already account for every simulated cycle: the CPI stack
//! charges each cycle to exactly one [`StallCause`] and asserts the total.
//! This crate applies the same discipline one level up, to the *service*:
//! every microsecond of a served request is charged to exactly one
//! lifetime [`Phase`], and the sum of the phases equals the request's
//! total by construction — the conservation invariant, asserted in debug
//! and pinned by tests.
//!
//! ## Two clock domains
//!
//! A request span carries measurements from two clocks that must never be
//! confused:
//!
//! - **host time** (monotonic [`std::time::Instant`]): where the service
//!   spent its wall-clock — reading, queueing, executing, writing. Host
//!   times differ on every run, so every serialized host-time field name
//!   ends in `_us` and consumers strip them before byte comparisons.
//! - **simulated cycles** (the engine's clock): how much simulated work
//!   the request represented. Deterministic, and safe to digest.
//!
//! ## Pieces
//!
//! - [`RequestSpan`] / [`SpanRecord`] ([`span`]): the per-request phase
//!   timer and its finished, serializable record.
//! - [`Registry`] ([`registry`]): the process-wide metrics aggregation —
//!   per-phase and per-request-class [`braid_uarch::Histogram`]s plus
//!   named event counters, rendered as deterministic-keyed JSON.
//! - [`TraceLog`] ([`log`]): an optional JSON-lines span/event export
//!   (braidd's `--trace-log`).
//! - [`TraceHub`] ([`registry`]): the registry and the optional log
//!   behind one handle, which is what the serving stack threads around.
//! - [`sweep_timing`] ([`sweep`]): per-point host timing, straggler, and
//!   imbalance summaries for the sweep engine, built on the same
//!   histogram summaries.
//!
//! [`StallCause`]: braid_uarch
//!
//! Std-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod registry;
pub mod span;
pub mod sweep;

pub use log::TraceLog;
pub use registry::{hist_summary_json, Registry, TraceHub};
pub use span::{next_trace_id, Phase, RequestSpan, SpanRecord};
pub use sweep::{point_timing, sweep_timing};
