//! Deterministic JSON renderings of reports, CPI stacks and collector
//! state.
//!
//! Everything here builds [`Json`] values with `braid-sweep`'s
//! dependency-free writer, so the output is byte-stable across runs and
//! thread counts. The one intentionally omitted field is
//! `SimReport::host_nanos`: it measures host wall-clock time, is different
//! on every run, and would break byte-for-byte comparisons of otherwise
//! identical simulations — consumers that want host throughput can time
//! the simulator themselves.

use braid_core::{CpiStack, SimReport};
use braid_isa::Program;
use braid_sweep::json::Json;
use braid_uarch::{Histogram, Ratio};

use crate::record::PipelineObserver;

fn ratio_json(r: &Ratio) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::Int(r.hits())),
        ("total".into(), Json::Int(r.total())),
        ("rate".into(), Json::Float(r.rate())),
    ])
}

/// Renders a CPI stack as an object keyed by [`StallCause::key`]
/// (canonical order, zero entries included so consumers see the full
/// taxonomy).
///
/// [`StallCause::key`]: braid_core::StallCause::key
pub fn cpi_json(cpi: &CpiStack) -> Json {
    Json::Obj(cpi.iter().map(|(c, n)| (c.key().to_string(), Json::Int(n))).collect())
}

/// Renders a histogram's summary statistics (sample count, mean, max and
/// the 50th/90th/99th percentiles; `max`/percentiles are `null` when
/// empty).
pub fn hist_json(h: &Histogram) -> Json {
    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::Int);
    Json::Obj(vec![
        ("samples".into(), Json::Int(h.total())),
        ("mean".into(), Json::Float(h.mean())),
        ("max".into(), opt(h.max())),
        ("p50".into(), opt(h.percentile_checked(0.5))),
        ("p90".into(), opt(h.percentile_checked(0.9))),
        ("p99".into(), opt(h.percentile_checked(0.99))),
    ])
}

/// Renders a full [`SimReport`] as deterministic JSON.
///
/// Every field is included **except `host_nanos`** (host wall-clock time,
/// not deterministic — see the module docs). Derived conveniences (`ipc`,
/// `stall_total`) are included so downstream tooling does not have to
/// recompute them.
pub fn report_json(r: &SimReport) -> Json {
    Json::Obj(vec![
        ("cycles".into(), Json::Int(r.cycles)),
        ("instructions".into(), Json::Int(r.instructions)),
        ("ipc".into(), Json::Float(r.ipc())),
        ("branch_accuracy".into(), ratio_json(&r.branch_accuracy)),
        ("ras_accuracy".into(), ratio_json(&r.ras_accuracy)),
        ("l1i".into(), ratio_json(&r.l1i)),
        ("l1d".into(), ratio_json(&r.l1d)),
        ("l2".into(), ratio_json(&r.l2)),
        ("forwarded_loads".into(), Json::Int(r.forwarded_loads)),
        ("mispredict_stall_cycles".into(), Json::Int(r.mispredict_stall_cycles)),
        ("stall_regs".into(), Json::Int(r.stall_regs)),
        ("stall_window".into(), Json::Int(r.stall_window)),
        ("stall_lsq".into(), Json::Int(r.stall_lsq)),
        ("lsq_wait_events".into(), Json::Int(r.lsq_wait_events)),
        ("stall_alloc_bw".into(), Json::Int(r.stall_alloc_bw)),
        ("stall_total".into(), Json::Int(r.stall_total())),
        ("external_values_per_cycle".into(), Json::Float(r.external_values_per_cycle)),
        ("checkpoint_words".into(), Json::Int(r.checkpoint_words)),
        ("exceptions_taken".into(), Json::Int(r.exceptions_taken)),
        ("retire_slots".into(), Json::Int(r.retire_slots)),
        ("cpi".into(), cpi_json(&r.cpi)),
    ])
}

/// Renders the collector's full state — occupancy timelines, hotspots,
/// per-braid profiles and event totals — together with the run's report.
///
/// `program` must be the program the core actually ran (for the braid
/// machine, the *translated* program), so hotspot indices resolve to the
/// right disassembly and braid ids.
pub fn metrics_json(
    program: &Program,
    core: &str,
    report: &SimReport,
    obs: &PipelineObserver,
) -> Json {
    let braid_of = program.braid_ids();

    let units = Json::Arr(
        obs.unit_histograms()
            .iter()
            .map(|(unit, h)| {
                Json::Obj(vec![
                    ("unit".into(), Json::Int(*unit as u64)),
                    ("occupancy".into(), hist_json(h)),
                ])
            })
            .collect(),
    );

    // Hotspots: hottest first, index ascending on ties (deterministic).
    let mut hot: Vec<(u32, u64)> = obs.hotspots().iter().map(|(&i, &n)| (i, n)).collect();
    hot.sort_by_key(|&(idx, n)| (std::cmp::Reverse(n), idx));
    let hotspots = Json::Arr(
        hot.iter()
            .map(|&(idx, stall)| {
                let text = program
                    .insts
                    .get(idx as usize)
                    .map_or_else(|| "<unknown>".to_string(), |i| i.to_string());
                let braid = braid_of.get(idx as usize).copied().unwrap_or(0);
                Json::Obj(vec![
                    ("idx".into(), Json::Int(idx as u64)),
                    ("inst".into(), Json::Str(text)),
                    ("braid".into(), Json::Int(braid as u64)),
                    ("head_stall_cycles".into(), Json::Int(stall)),
                ])
            })
            .collect(),
    );

    // Fold per-PC hotspots into per-braid profiles.
    let mut by_braid: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for &(idx, stall) in &hot {
        let b = braid_of.get(idx as usize).copied().unwrap_or(0);
        *by_braid.entry(b).or_insert(0) += stall;
    }
    let braids = Json::Arr(
        by_braid
            .iter()
            .map(|(&b, &stall)| {
                Json::Obj(vec![
                    ("braid".into(), Json::Int(b as u64)),
                    ("head_stall_cycles".into(), Json::Int(stall)),
                ])
            })
            .collect(),
    );

    Json::Obj(vec![
        ("program".into(), Json::Str(program.name.clone())),
        ("core".into(), Json::Str(core.to_string())),
        ("report".into(), report_json(report)),
        ("events".into(), Json::Obj(vec![
            ("records".into(), Json::Int(obs.records().len() as u64)),
            ("retired".into(), Json::Int(obs.retired_count())),
            ("flushed".into(), Json::Int(obs.flushed_count())),
            ("squashes".into(), Json::Int(obs.squashes())),
        ])),
        ("unit_occupancy".into(), units),
        ("lsq_occupancy".into(), hist_json(obs.lsq_histogram())),
        ("hotspots".into(), hotspots),
        ("braids".into(), braids),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_core::{Observer, StallCause};

    #[test]
    fn report_json_excludes_host_nanos_and_round_trips() {
        let mut r = SimReport { cycles: 10, instructions: 20, host_nanos: 12345, ..SimReport::default() };
        r.cpi.add(StallCause::Base, 7);
        r.cpi.add(StallCause::DCache, 3);
        let v = report_json(&r);
        let text = v.to_string();
        assert!(!text.contains("host_nanos"), "{text}");
        assert!(!text.contains("12345"), "{text}");
        let back = braid_sweep::json::parse(&text).expect("round-trips");
        assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(10));
        assert_eq!(back.get("cpi").and_then(|c| c.get("dcache")).and_then(Json::as_u64), Some(3));
        assert_eq!(back.get("cpi").and_then(|c| c.get("regs")).and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn report_json_is_insensitive_to_host_nanos() {
        let a = SimReport { cycles: 5, host_nanos: 1, ..SimReport::default() };
        let b = SimReport { cycles: 5, host_nanos: 999_999, ..SimReport::default() };
        assert_eq!(report_json(&a).to_string(), report_json(&b).to_string());
    }

    #[test]
    fn hist_json_handles_empty_and_filled() {
        let empty = hist_json(&Histogram::new());
        assert_eq!(empty.get("max"), Some(&Json::Null));
        let h: Histogram = (1..=100).collect();
        let v = hist_json(&h);
        assert_eq!(v.get("p50").and_then(Json::as_u64), Some(50));
        assert_eq!(v.get("samples").and_then(Json::as_u64), Some(100));
    }

    #[test]
    fn metrics_json_sorts_hotspots_and_folds_braids() {
        let program = braid_isa::asm::assemble("addi r0, #1, r1\naddq r1, r1, r2\nhalt")
            .expect("assembles");
        let mut o = PipelineObserver::new();
        o.cycle_cause(0, 2, StallCause::DCache, 0);
        o.cycle_cause(2, 9, StallCause::BeuSerial, 1);
        o.unit_occupancy(0, 3);
        let v = metrics_json(&program, "ooo", &SimReport::default(), &o);
        let hot = v.get("hotspots").and_then(Json::as_arr).expect("hotspot array");
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].get("idx").and_then(Json::as_u64), Some(1), "hottest first");
        assert_eq!(hot[0].get("head_stall_cycles").and_then(Json::as_u64), Some(9));
        assert!(hot[0].get("inst").and_then(Json::as_str).expect("text").contains("addq"));
        let braids = v.get("braids").and_then(Json::as_arr).expect("braid array");
        assert_eq!(braids.len(), 2, "two braids carry stalls");
        let text = v.to_string();
        assert_eq!(braid_sweep::json::parse(&text).expect("round-trips").to_string(), text);
    }
}
