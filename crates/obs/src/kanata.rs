//! Konata-compatible pipeline-viewer export and an in-repo format checker.
//!
//! The [Konata](https://github.com/shioyadan/Konata) pipeline viewer reads
//! a tab-separated `Kanata 0004` log: `C=`/`C` advance the clock, `I`
//! introduces an instruction record, `L` labels it, `S`/`E` open and close
//! pipeline stages and `R` retires or flushes it. [`write_kanata`] renders
//! a [`PipelineObserver`]'s records with four stages:
//!
//! | stage | span |
//! |-------|------|
//! | `F`   | fetch → dispatch |
//! | `Ds`  | dispatch → issue (queue + operand wait) |
//! | `Ex`  | issue → completion |
//! | `Cm`  | completion → retirement (waiting in order) |
//!
//! Squashed attempts close with `R … 1` (flush) at the squash cycle, so
//! wrong-path work is visible. Output is fully deterministic: records are
//! emitted in fetch order and events are stably sorted by cycle.
//!
//! [`check_kanata`] is the validating counterpart used by tests and
//! `scripts/tier1.sh`: it re-parses a log and enforces the structural
//! rules a viewer depends on (clock monotonicity, stages opened before
//! closed, every record eventually retired or flushed).

use std::fmt::Write as _;

use braid_isa::Program;

use crate::record::{InstRecord, PipelineObserver, NEVER};

/// A stage transition: close the previous stage (if any) and open `stage`
/// (if any) at `cycle`.
struct Event {
    cycle: u64,
    uid: usize,
    /// Lines to append for this uid at this cycle, already formatted
    /// without the leading clock bookkeeping.
    lines: Vec<String>,
}

fn inst_label(program: &Program, r: &InstRecord) -> String {
    let text = match program.insts.get(r.idx as usize) {
        Some(inst) => inst.to_string(),
        None => "<unknown>".to_string(),
    };
    // Tabs are the format's field separator; labels must not contain them.
    format!("[{}] {}", r.idx, text.replace('\t', " "))
}

/// Stage plan for one record: `(cycle, open_stage)` transitions plus the
/// final close cycle and retire type.
fn plan(r: &InstRecord) -> (Vec<(u64, &'static str)>, u64, u32) {
    let mut stages: Vec<(u64, &'static str)> = vec![(r.fetch, "F")];
    let mut clock = r.fetch;
    // The close cycle: retirement, flush, or (pathologically) fetch.
    let end = if r.flushed {
        r.flush_cycle.max(r.fetch)
    } else if r.retire != NEVER {
        r.retire
    } else {
        r.fetch
    };
    let mut push = |at: u64, stage: &'static str, clock: &mut u64| {
        if at == NEVER {
            return;
        }
        // Clamp to monotonic, and drop transitions past the record's end.
        let at = at.max(*clock);
        if at <= end {
            stages.push((at, stage));
            *clock = at;
        }
    };
    push(r.dispatch, "Ds", &mut clock);
    push(r.issue, "Ex", &mut clock);
    if !r.flushed && r.retire != NEVER && r.done != NEVER && r.done < r.retire {
        push(r.done, "Cm", &mut clock);
    }
    // Dedup same-cycle transitions: keep the last stage opened per cycle so
    // zero-length stages do not confuse the viewer.
    let mut dedup: Vec<(u64, &'static str)> = Vec::with_capacity(stages.len());
    for (at, stage) in stages {
        if let Some(last) = dedup.last_mut() {
            if last.0 == at {
                last.1 = stage;
                continue;
            }
        }
        dedup.push((at, stage));
    }
    (dedup, end, if r.flushed { 1 } else { 0 })
}

/// Renders the collector's records as a `Kanata 0004` log.
///
/// `program` supplies the disassembly for the left-pane labels (for the
/// braid machine, pass the *translated* program the core actually ran).
pub fn write_kanata(program: &Program, obs: &PipelineObserver) -> String {
    let mut events: Vec<Event> = Vec::new();
    for (uid, r) in obs.records().iter().enumerate() {
        let (stages, end, rtype) = plan(r);
        events.push(Event {
            cycle: r.fetch,
            uid,
            lines: vec![
                format!("I\t{uid}\t{}\t0", r.seq),
                format!("L\t{uid}\t0\t{}", inst_label(program, r)),
            ],
        });
        let mut prev: Option<&'static str> = None;
        for &(at, stage) in &stages {
            let mut lines = Vec::new();
            if let Some(p) = prev {
                lines.push(format!("E\t{uid}\t0\t{p}"));
            }
            lines.push(format!("S\t{uid}\t0\t{stage}"));
            events.push(Event { cycle: at, uid, lines });
            prev = Some(stage);
        }
        let mut lines = Vec::new();
        if let Some(p) = prev {
            lines.push(format!("E\t{uid}\t0\t{p}"));
        }
        lines.push(format!("R\t{uid}\t{}\t{rtype}", r.seq));
        events.push(Event { cycle: end, uid, lines });
    }
    // Stable by construction: per-uid events are pushed in cycle order, and
    // a stable sort keeps the fetch-order tie-break deterministic.
    events.sort_by_key(|e| (e.cycle, e.uid));

    let mut out = String::from("Kanata\t0004\n");
    let mut clock: Option<u64> = None;
    for e in &events {
        match clock {
            None => writeln!(out, "C=\t{}", e.cycle).expect("string write"),
            Some(c) if e.cycle > c => {
                writeln!(out, "C\t{}", e.cycle - c).expect("string write");
            }
            _ => {}
        }
        clock = Some(e.cycle);
        for line in &e.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// What [`check_kanata`] learned about a valid log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KanataSummary {
    /// Instruction records introduced (`I` commands).
    pub records: u64,
    /// Records closed with a retire (`R … 0`).
    pub retired: u64,
    /// Records closed with a flush (`R … 1`).
    pub flushed: u64,
    /// Total cycles the clock advanced over.
    pub cycles: u64,
}

#[derive(Debug, Default)]
struct RecordState {
    open_stage: Option<String>,
    closed: bool,
}

fn field<'a>(fields: &[&'a str], i: usize, line_no: usize) -> Result<&'a str, String> {
    fields.get(i).copied().ok_or_else(|| format!("line {line_no}: missing field {i}"))
}

fn numeric(s: &str, line_no: usize) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("line {line_no}: `{s}` is not a number"))
}

/// Validates a `Kanata 0004` log, returning a summary on success.
///
/// Enforced rules: the version header; `C` deltas are ≥ 1; every `L` /
/// `S` / `E` / `R` refers to a previously-introduced id; `E` closes the
/// stage the matching `S` opened; nothing follows a record's `R`; and at
/// the end of the log every record has been closed by an `R`.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_kanata(text: &str) -> Result<KanataSummary, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "Kanata\t0004")) => {}
        Some((_, other)) => return Err(format!("bad header `{other}` (want `Kanata\\t0004`)")),
        None => return Err("empty log".to_string()),
    }
    let mut summary = KanataSummary::default();
    let mut clock_set = false;
    let mut states: Vec<RecordState> = Vec::new();
    let known = |id: &str, line_no: usize, states: &[RecordState]| {
        let id = numeric(id, line_no)?;
        if id as usize >= states.len() {
            return Err(format!("line {line_no}: id {id} used before its `I`"));
        }
        Ok(id as usize)
    };
    for (i, line) in lines {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "C=" => {
                numeric(field(&fields, 1, line_no)?, line_no)?;
                clock_set = true;
            }
            "C" => {
                if !clock_set {
                    return Err(format!("line {line_no}: `C` before `C=`"));
                }
                let delta = numeric(field(&fields, 1, line_no)?, line_no)?;
                if delta == 0 {
                    return Err(format!("line {line_no}: clock delta must be >= 1"));
                }
                summary.cycles += delta;
            }
            "I" => {
                let id = numeric(field(&fields, 1, line_no)?, line_no)?;
                numeric(field(&fields, 2, line_no)?, line_no)?;
                numeric(field(&fields, 3, line_no)?, line_no)?;
                if id as usize != states.len() {
                    return Err(format!(
                        "line {line_no}: ids must be introduced densely in order (got {id}, want {})",
                        states.len()
                    ));
                }
                states.push(RecordState::default());
                summary.records += 1;
            }
            "L" => {
                let id = known(field(&fields, 1, line_no)?, line_no, &states)?;
                field(&fields, 3, line_no)?;
                if states[id].closed {
                    return Err(format!("line {line_no}: label after retire of id {id}"));
                }
            }
            "S" | "E" => {
                let cmd = fields[0];
                let id = known(field(&fields, 1, line_no)?, line_no, &states)?;
                numeric(field(&fields, 2, line_no)?, line_no)?;
                let stage = field(&fields, 3, line_no)?;
                let st = &mut states[id];
                if st.closed {
                    return Err(format!("line {line_no}: `{cmd}` after retire of id {id}"));
                }
                if cmd == "S" {
                    if let Some(open) = &st.open_stage {
                        return Err(format!(
                            "line {line_no}: id {id} opens `{stage}` while `{open}` is open"
                        ));
                    }
                    st.open_stage = Some(stage.to_string());
                } else {
                    match st.open_stage.take() {
                        Some(open) if open == stage => {}
                        Some(open) => {
                            return Err(format!(
                                "line {line_no}: id {id} closes `{stage}` but `{open}` is open"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "line {line_no}: id {id} closes `{stage}` with no open stage"
                            ));
                        }
                    }
                }
            }
            "R" => {
                let id = known(field(&fields, 1, line_no)?, line_no, &states)?;
                numeric(field(&fields, 2, line_no)?, line_no)?;
                let rtype = numeric(field(&fields, 3, line_no)?, line_no)?;
                let st = &mut states[id];
                if st.closed {
                    return Err(format!("line {line_no}: id {id} retired twice"));
                }
                if let Some(open) = &st.open_stage {
                    return Err(format!(
                        "line {line_no}: id {id} retires with stage `{open}` still open"
                    ));
                }
                st.closed = true;
                match rtype {
                    0 => summary.retired += 1,
                    1 => summary.flushed += 1,
                    _ => return Err(format!("line {line_no}: retire type must be 0 or 1")),
                }
            }
            other => return Err(format!("line {line_no}: unknown command `{other}`")),
        }
    }
    if let Some(id) = states.iter().position(|s| !s.closed) {
        return Err(format!("id {id} was never retired or flushed"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_core::Observer;

    fn tiny_program() -> Program {
        braid_isa::asm::assemble("addi r0, #1, r1\nhalt").expect("assembles")
    }

    fn observed_pair() -> PipelineObserver {
        let mut o = PipelineObserver::new();
        o.fetch(0, 0, 0);
        o.dispatch(0, 0, 0, 1);
        o.issue(0, 2, 3, 3);
        o.fetch(1, 1, 1);
        o.dispatch(1, 1, 0, 2);
        o.issue(1, 3, 4, 4);
        o.retire(0, 4);
        o.retire(1, 5);
        o
    }

    #[test]
    fn writer_output_validates_and_counts() {
        let text = write_kanata(&tiny_program(), &observed_pair());
        assert!(text.starts_with("Kanata\t0004\n"), "{text}");
        assert!(text.contains("addi"), "label carries the disassembly: {text}");
        let s = check_kanata(&text).expect("valid log");
        assert_eq!(s.records, 2);
        assert_eq!(s.retired, 2);
        assert_eq!(s.flushed, 0);
        assert_eq!(s.cycles, 5, "clock walks fetch 0 to retire 5");
    }

    #[test]
    fn flushed_records_close_with_type_1() {
        let mut o = PipelineObserver::new();
        o.fetch(0, 0, 0);
        o.dispatch(0, 0, 0, 1);
        o.squash(3);
        o.fetch(0, 0, 4);
        o.dispatch(0, 0, 0, 5);
        o.issue(0, 6, 7, 7);
        o.retire(0, 8);
        let text = write_kanata(&tiny_program(), &o);
        let s = check_kanata(&text).expect("valid log");
        assert_eq!(s.records, 2);
        assert_eq!(s.retired, 1);
        assert_eq!(s.flushed, 1);
        assert!(text.contains("\t1\n"), "flush retire type present: {text}");
    }

    #[test]
    fn writer_is_deterministic() {
        let a = write_kanata(&tiny_program(), &observed_pair());
        let b = write_kanata(&tiny_program(), &observed_pair());
        assert_eq!(a, b);
    }

    #[test]
    fn checker_rejects_malformed_logs() {
        assert!(check_kanata("").unwrap_err().contains("empty"));
        assert!(check_kanata("Kanata\t0003\n").unwrap_err().contains("bad header"));
        let bad_uid = "Kanata\t0004\nC=\t0\nS\t7\t0\tF\n";
        assert!(check_kanata(bad_uid).unwrap_err().contains("before its `I`"));
        let zero_delta = "Kanata\t0004\nC=\t0\nC\t0\n";
        assert!(check_kanata(zero_delta).unwrap_err().contains(">= 1"));
        let unclosed = "Kanata\t0004\nC=\t0\nI\t0\t0\t0\nS\t0\t0\tF\n";
        assert!(check_kanata(unclosed).unwrap_err().contains("never retired"));
        let open_retire = "Kanata\t0004\nC=\t0\nI\t0\t0\t0\nS\t0\t0\tF\nR\t0\t0\t0\n";
        assert!(check_kanata(open_retire).unwrap_err().contains("still open"));
        let bad_close = "Kanata\t0004\nC=\t0\nI\t0\t0\t0\nS\t0\t0\tF\nE\t0\t0\tEx\n";
        assert!(check_kanata(bad_close).unwrap_err().contains("but `F` is open"));
    }

    #[test]
    fn stage_plan_clamps_and_dedups() {
        // done == retire: no Cm stage; dispatch == issue cycle collapses Ds.
        let r = InstRecord {
            seq: 0,
            idx: 0,
            unit: 0,
            fetch: 2,
            dispatch: 3,
            issue: 3,
            avail: 5,
            done: 6,
            retire: 6,
            flushed: false,
            flush_cycle: NEVER,
        };
        let (stages, end, rtype) = plan(&r);
        assert_eq!(stages, vec![(2, "F"), (3, "Ex")]);
        assert_eq!((end, rtype), (6, 0));
    }
}
