//! Cycle-accurate pipeline observability for the braid simulator.
//!
//! `braid-core` defines the zero-cost [`Observer`](braid_core::Observer)
//! trait and the always-on CPI accounting; this crate supplies the heavy
//! collectors and exporters that sit behind it:
//!
//! * [`PipelineObserver`] — records per-dynamic-instruction pipeline
//!   events (fetch / dispatch / issue / complete / retire timestamps, the
//!   execution unit each instruction was steered to, squash outcomes),
//!   per-unit occupancy histograms and per-PC stall hotspots.
//! * [`kanata`] — writes the recorded events as a Konata-compatible
//!   pipeline-viewer log (`Kanata 0004`) and validates such logs with an
//!   in-repo format checker.
//! * [`metrics`] — renders reports, CPI stacks, occupancy histograms and
//!   hotspot profiles as deterministic JSON (via `braid-sweep`'s
//!   dependency-free writer). `SimReport::host_nanos` is deliberately
//!   **never** serialized: it is host wall-clock time and would make
//!   otherwise byte-identical outputs differ between runs.
//!
//! The collectors never perturb timing: the cores call the same engine
//! code whether observed or not, and the CPI stack is computed by the
//! engine itself, so a run with a [`PipelineObserver`] attached produces a
//! `SimReport` identical to an unobserved run (a property test in
//! `tests/cpi_stacks.rs` holds this at 200 random programs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kanata;
pub mod metrics;
pub mod record;

pub use kanata::{check_kanata, write_kanata, KanataSummary};
pub use metrics::{cpi_json, hist_json, metrics_json, report_json};
pub use record::{InstRecord, PipelineObserver, NEVER};
