//! The event collector: per-instruction records, occupancy timelines and
//! stall hotspots.

use std::collections::BTreeMap;

use braid_core::{CpiStack, Observer, StallCause};
use braid_uarch::Histogram;

/// Sentinel timestamp: "this event has not happened".
pub const NEVER: u64 = u64::MAX;

/// One fetch *attempt* of one dynamic instruction.
///
/// A squash ends every in-flight attempt (marking it [`InstRecord::flushed`])
/// and the re-fetch of the same sequence number opens a **new** record, so
/// wrong-path work stays visible in the pipeline viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstRecord {
    /// Dynamic sequence number (position in the committed trace).
    pub seq: u64,
    /// Static instruction index.
    pub idx: u32,
    /// Execution unit (scheduler / FIFO / BEU id) the instruction was
    /// steered to; `u32::MAX` before dispatch.
    pub unit: u32,
    /// Cycle the instruction entered the fetch queue.
    pub fetch: u64,
    /// Cycle it dispatched into its unit ([`NEVER`] if it never did).
    pub dispatch: u64,
    /// Cycle it issued to a function unit ([`NEVER`] if it never did).
    pub issue: u64,
    /// Cycle its result became visible to consumers ([`NEVER`] if unknown).
    pub avail: u64,
    /// Cycle its execution completed — earliest retirement ([`NEVER`] if
    /// unknown; a store's completion resolves late, when its data arrives).
    pub done: u64,
    /// Cycle it retired ([`NEVER`] if it was squashed instead).
    pub retire: u64,
    /// Whether this attempt was squashed by a checkpoint rollback.
    pub flushed: bool,
    /// Cycle of the squash ([`NEVER`] when not flushed).
    pub flush_cycle: u64,
}

impl InstRecord {
    fn new(seq: u64, idx: u32, fetch: u64) -> InstRecord {
        InstRecord {
            seq,
            idx,
            unit: u32::MAX,
            fetch,
            dispatch: NEVER,
            issue: NEVER,
            avail: NEVER,
            done: NEVER,
            retire: NEVER,
            flushed: false,
            flush_cycle: NEVER,
        }
    }

    /// Whether this attempt reached retirement.
    pub fn retired(&self) -> bool {
        self.retire != NEVER
    }

    /// Dispatch-to-issue latency (queue + operand wait), if both happened.
    pub fn dispatch_to_issue(&self) -> Option<u64> {
        if self.dispatch == NEVER || self.issue == NEVER {
            None
        } else {
            Some(self.issue.saturating_sub(self.dispatch))
        }
    }
}

/// The full event collector: implements [`Observer`] and accumulates
/// everything the exporters need.
///
/// Records grow with the dynamic instruction count (one entry per fetch
/// attempt), so attach one only when an export was requested; the CPI
/// stack alone is always available from the `SimReport`.
#[derive(Debug, Default)]
pub struct PipelineObserver {
    records: Vec<InstRecord>,
    /// seq → index into `records` of the live (not yet retired or
    /// squashed) attempt.
    live: BTreeMap<u64, usize>,
    unit_occ: BTreeMap<u32, Histogram>,
    lsq_occ: Histogram,
    /// Static index → cycles the instruction sat at the head of the window
    /// while a non-`Base` cause was charged.
    hotspots: BTreeMap<u32, u64>,
    cpi: CpiStack,
    squashes: u64,
}

impl PipelineObserver {
    /// Creates an empty collector.
    pub fn new() -> PipelineObserver {
        PipelineObserver::default()
    }

    /// Every fetch attempt, in fetch order.
    pub fn records(&self) -> &[InstRecord] {
        &self.records
    }

    /// Occupancy histogram per execution unit (one sample per event step).
    pub fn unit_histograms(&self) -> &BTreeMap<u32, Histogram> {
        &self.unit_occ
    }

    /// Load-store-queue occupancy histogram (one sample per event step).
    pub fn lsq_histogram(&self) -> &Histogram {
        &self.lsq_occ
    }

    /// Static index → head-of-window stall cycles (cycles charged to a
    /// non-`Base` cause while this instruction was the oldest in flight).
    pub fn hotspots(&self) -> &BTreeMap<u32, u64> {
        &self.hotspots
    }

    /// The CPI stack mirrored from the engine's per-cycle attributions.
    pub fn cpi(&self) -> &CpiStack {
        &self.cpi
    }

    /// Number of checkpoint rollbacks observed.
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    /// Number of squashed (wrong-path) fetch attempts.
    pub fn flushed_count(&self) -> u64 {
        self.records.iter().filter(|r| r.flushed).count() as u64
    }

    /// Number of attempts that retired.
    pub fn retired_count(&self) -> u64 {
        self.records.iter().filter(|r| r.retired()).count() as u64
    }

    fn live_mut(&mut self, seq: u64) -> Option<&mut InstRecord> {
        let i = *self.live.get(&seq)?;
        self.records.get_mut(i)
    }
}

impl Observer for PipelineObserver {
    fn fetch(&mut self, seq: u64, idx: u32, cycle: u64) {
        let i = self.records.len();
        self.records.push(InstRecord::new(seq, idx, cycle));
        self.live.insert(seq, i);
    }

    fn dispatch(&mut self, seq: u64, idx: u32, unit: u32, cycle: u64) {
        if let Some(r) = self.live_mut(seq) {
            debug_assert_eq!(r.idx, idx, "dispatch must match the fetched record");
            r.unit = unit;
            r.dispatch = cycle;
        }
    }

    fn issue(&mut self, seq: u64, cycle: u64, avail_at: u64, done_at: u64) {
        if let Some(r) = self.live_mut(seq) {
            r.issue = cycle;
            r.avail = avail_at;
            r.done = done_at;
        }
    }

    fn store_data(&mut self, seq: u64, done_at: u64) {
        if let Some(r) = self.live_mut(seq) {
            r.done = done_at;
        }
    }

    fn retire(&mut self, seq: u64, cycle: u64) {
        if let Some(i) = self.live.remove(&seq) {
            if let Some(r) = self.records.get_mut(i) {
                r.retire = cycle;
            }
        }
    }

    fn squash(&mut self, cycle: u64) {
        self.squashes += 1;
        for (_, i) in std::mem::take(&mut self.live) {
            if let Some(r) = self.records.get_mut(i) {
                r.flushed = true;
                r.flush_cycle = cycle;
            }
        }
    }

    fn cycle_cause(&mut self, _cycle: u64, n: u64, cause: StallCause, head_idx: u32) {
        self.cpi.add(cause, n);
        if cause != StallCause::Base && head_idx != u32::MAX {
            *self.hotspots.entry(head_idx).or_insert(0) += n;
        }
    }

    fn unit_occupancy(&mut self, unit: u32, occ: u32) {
        self.unit_occ.entry(unit).or_default().record(occ as u64);
    }

    fn lsq_occupancy(&mut self, occ: u32) {
        self.lsq_occ.record(occ as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_follow_the_event_stream() {
        let mut o = PipelineObserver::new();
        o.fetch(0, 7, 1);
        o.dispatch(0, 7, 3, 2);
        o.issue(0, 4, 6, 7);
        o.retire(0, 9);
        let r = o.records()[0];
        assert_eq!((r.seq, r.idx, r.unit), (0, 7, 3));
        assert_eq!((r.fetch, r.dispatch, r.issue, r.avail, r.done, r.retire), (1, 2, 4, 6, 7, 9));
        assert!(r.retired() && !r.flushed);
        assert_eq!(r.dispatch_to_issue(), Some(2));
        assert_eq!(o.retired_count(), 1);
    }

    #[test]
    fn squash_flushes_all_live_attempts_and_refetch_opens_new_records() {
        let mut o = PipelineObserver::new();
        o.fetch(0, 1, 1);
        o.fetch(1, 2, 1);
        o.dispatch(0, 1, 0, 2);
        o.squash(5);
        assert_eq!(o.squashes(), 1);
        assert_eq!(o.flushed_count(), 2);
        assert!(o.records().iter().all(|r| r.flushed && r.flush_cycle == 5));
        // The same sequence numbers fetch again: fresh records.
        o.fetch(0, 1, 6);
        o.retire(0, 9);
        assert_eq!(o.records().len(), 3);
        assert!(o.records()[2].retired());
        assert!(o.records()[0].flushed, "the old attempt stays flushed");
    }

    #[test]
    fn late_store_data_updates_done() {
        let mut o = PipelineObserver::new();
        o.fetch(4, 0, 0);
        o.issue(4, 2, 3, NEVER);
        o.store_data(4, 11);
        assert_eq!(o.records()[0].done, 11);
    }

    #[test]
    fn hotspots_skip_base_and_empty_window() {
        let mut o = PipelineObserver::new();
        o.cycle_cause(0, 3, StallCause::DCache, 5);
        o.cycle_cause(3, 1, StallCause::Base, 5);
        o.cycle_cause(4, 2, StallCause::EmptyFrontend, u32::MAX);
        assert_eq!(o.hotspots().get(&5), Some(&3));
        assert_eq!(o.hotspots().len(), 1);
        assert_eq!(o.cpi().total(), 6);
    }

    #[test]
    fn occupancy_histograms_accumulate() {
        let mut o = PipelineObserver::new();
        o.unit_occupancy(0, 2);
        o.unit_occupancy(0, 4);
        o.unit_occupancy(1, 1);
        o.lsq_occupancy(3);
        assert_eq!(o.unit_histograms().len(), 2);
        assert_eq!(o.unit_histograms()[&0].total(), 2);
        assert!((o.unit_histograms()[&0].mean() - 3.0).abs() < 1e-12);
        assert_eq!(o.lsq_histogram().max(), Some(3));
    }
}
