//! Register dataflow: global liveness and intra-block def-use chains.
//!
//! These analyses stand in for the paper's profiling tool, which "analyzes
//! the dataflow graph of the program and records the producer and consumers
//! of each value produced".

use braid_isa::{Program, Reg};

use crate::cfg::{BlockId, Cfg};

/// A set of architectural registers as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// Every architectural register.
    pub const ALL: RegSet = RegSet(u64::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 >> r.index() & 1 == 1
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Number of registers in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Per-block liveness results.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit of each block.
    pub live_out: Vec<RegSet>,
}

/// The register a def writes, ignoring writes to the hard-wired zero
/// register (which produce no value).
pub fn def_reg(program: &Program, idx: usize) -> Option<Reg> {
    program.insts[idx].written_reg().filter(|r| !r.is_zero())
}

/// Computes global register liveness with the standard backward iterative
/// dataflow. Blocks ending in an indirect transfer (`ret`) conservatively
/// treat every register as live-out, since return sites are unknown
/// statically — the same conservatism a binary translator must apply.
pub fn liveness(program: &Program, cfg: &Cfg) -> Liveness {
    let n = cfg.len();
    // gen = upward-exposed uses, kill = defs.
    let mut gen = vec![RegSet::EMPTY; n];
    let mut kill = vec![RegSet::EMPTY; n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for i in block.range() {
            let inst = &program.insts[i];
            for r in inst.read_regs() {
                if !r.is_zero() && !kill[b].contains(r) {
                    gen[b].insert(r);
                }
            }
            if let Some(d) = def_reg(program, i) {
                kill[b].insert(d);
            }
        }
    }
    let indirect: Vec<bool> = {
        let mut v = vec![false; n];
        for &b in &cfg.indirect_exits {
            v[b] = true;
        }
        v
    };
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut live_out = vec![RegSet::EMPTY; n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = if indirect[b] { RegSet::ALL } else { RegSet::EMPTY };
            for &s in &cfg.blocks[b].succs {
                out = out.union(live_in[s]);
            }
            let inn = RegSet(gen[b].0 | (out.0 & !kill[b].0));
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Operand slots of an instruction's reads: explicit sources 0 and 1, plus
/// slot 2 for the implicit old-destination read of conditional moves.
pub const READ_SLOTS: usize = 3;

/// Intra-block def-use chains for one basic block.
///
/// Positions are block-relative instruction offsets.
#[derive(Debug, Clone)]
pub struct BlockDefUse {
    /// Block this was computed for.
    pub block: BlockId,
    /// `src_def[p][slot]` = the block-relative position of the def feeding
    /// read `slot` of instruction `p`, or `None` when the value is live-in.
    pub src_def: Vec<[Option<u32>; READ_SLOTS]>,
    /// `uses_of[p]` = block-relative positions reading the value defined at
    /// `p` (empty when `p` defines nothing).
    pub uses_of: Vec<Vec<u32>>,
    /// Whether `p` holds the block's last def of the register it writes.
    pub is_last_def: Vec<bool>,
}

impl BlockDefUse {
    /// Computes def-use chains for `block` of `cfg`.
    pub fn compute(program: &Program, cfg: &Cfg, block: BlockId) -> BlockDefUse {
        let blk = &cfg.blocks[block];
        let len = blk.len();
        let mut current_def: [Option<u32>; 64] = [None; 64];
        let mut src_def = vec![[None; READ_SLOTS]; len];
        let mut uses_of = vec![Vec::new(); len];
        let mut is_last_def = vec![false; len];
        for p in 0..len {
            let inst = &program.insts[blk.start as usize + p];
            let record = |slot: usize, r: Reg, src_def: &mut Vec<[Option<u32>; READ_SLOTS]>,
                              uses_of: &mut Vec<Vec<u32>>| {
                if r.is_zero() {
                    return;
                }
                if let Some(d) = current_def[r.index() as usize] {
                    src_def[p][slot] = Some(d);
                    uses_of[d as usize].push(p as u32);
                }
            };
            for (slot, r) in inst.src_regs().enumerate() {
                record(slot, r, &mut src_def, &mut uses_of);
            }
            if inst.opcode.reads_dest() {
                record(2, inst.dest.expect("reads_dest implies dest"), &mut src_def, &mut uses_of);
            }
            if let Some(d) = def_reg(program, blk.start as usize + p) {
                current_def[d.index() as usize] = Some(p as u32);
            }
        }
        for d in current_def.iter().flatten() {
            is_last_def[*d as usize] = true;
        }
        BlockDefUse { block, src_def, uses_of, is_last_def }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        let r1 = Reg::int(1).unwrap();
        let f0 = Reg::float(0).unwrap();
        s.insert(r1);
        s.insert(f0);
        assert!(s.contains(r1) && s.contains(f0));
        assert_eq!(s.len(), 2);
        s.remove(r1);
        assert!(!s.contains(r1));
        assert!(!s.is_empty());
    }

    #[test]
    fn liveness_through_loop() {
        let p = assemble(
            r#"
                addi r0, #4, r1
                addi r0, #0, r2
            loop:
                addq r2, r1, r2
                subi r1, #1, r1
                bne  r1, loop
                stq  r2, 0(r3)
                halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let r1 = Reg::int(1).unwrap();
        let r2 = Reg::int(2).unwrap();
        let r3 = Reg::int(3).unwrap();
        // Loop block (block 1): r1 and r2 live in and out; r3 live through
        // for the store after the loop.
        let loop_b = cfg.block_of[2];
        assert!(live.live_in[loop_b].contains(r1));
        assert!(live.live_in[loop_b].contains(r2));
        assert!(live.live_in[loop_b].contains(r3));
        assert!(live.live_out[loop_b].contains(r2));
        // Exit block consumes r2 and r3, nothing live out.
        let exit_b = cfg.block_of[5];
        assert!(live.live_in[exit_b].contains(r2));
        assert!(live.live_in[exit_b].contains(r3));
        assert!(live.live_out[exit_b].is_empty());
    }

    #[test]
    fn ret_blocks_are_conservative() {
        let p = assemble("f: addi r0, #1, r9\nret r31\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let f_b = cfg.block_of[0];
        // r9's def reaches the unknown return site: live out.
        assert!(live.live_out[f_b].contains(Reg::int(9).unwrap()));
    }

    #[test]
    fn def_use_chains_within_block() {
        let p = assemble(
            r#"
                addq r1, r2, r3
                addq r3, r3, r4
                addq r4, r9, r3
                halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let du = BlockDefUse::compute(&p, &cfg, 0);
        // inst1 reads r3 twice from inst0.
        assert_eq!(du.src_def[1][0], Some(0));
        assert_eq!(du.src_def[1][1], Some(0));
        assert_eq!(du.uses_of[0], vec![1, 1]);
        // inst2 reads r4 from inst1 and r9 from outside.
        assert_eq!(du.src_def[2][0], Some(1));
        assert_eq!(du.src_def[2][1], None);
        // r3's last def is inst2, not inst0.
        assert!(du.is_last_def[2]);
        assert!(!du.is_last_def[0]);
        assert!(du.is_last_def[1], "r4 defined once");
    }

    #[test]
    fn cmov_implicit_read_recorded() {
        let p = assemble(
            r#"
                addi r0, #1, r6
                cmovnei r2, #7, r6
                halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let du = BlockDefUse::compute(&p, &cfg, 0);
        assert_eq!(du.src_def[1][2], Some(0), "cmov reads its old destination");
        assert_eq!(du.uses_of[0], vec![1]);
    }

    #[test]
    fn zero_register_creates_no_edges() {
        let p = assemble("addi r0, #5, r0\naddq r0, r0, r1\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        let du = BlockDefUse::compute(&p, &cfg, 0);
        assert_eq!(du.src_def[1][0], None);
        assert!(du.uses_of[0].is_empty());
        let live = liveness(&p, &cfg);
        assert!(!live.live_in[0].contains(Reg::ZERO));
    }
}
