//! Braid statistics reproducing the paper's Tables 1–3.

use std::collections::BTreeMap;
use std::fmt;

/// Running mean over `f64` samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatSummary {
    n: u64,
    sum: f64,
}

impl StatSummary {
    /// Records a sample.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

impl fmt::Display for StatSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.mean())
    }
}

/// Per-braid raw measurements collected during translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BraidMeasure {
    /// Instructions in the braid.
    pub size: u32,
    /// Longest dataflow path through the braid, in instructions.
    pub depth: u32,
    /// Values written to the internal register file.
    pub internals: u32,
    /// Distinct external input registers.
    pub ext_inputs: u32,
    /// Values written to the external register file (dead defs excluded).
    pub ext_outputs: u32,
    /// Whether the braid ends in a control transfer or is a `nop`.
    pub is_branch_or_nop: bool,
}

impl BraidMeasure {
    /// The paper's braid *width*: size over longest dataflow path.
    pub fn width(&self) -> f64 {
        self.size as f64 / self.depth.max(1) as f64
    }

    /// Whether this is a single-instruction braid.
    pub fn is_single(&self) -> bool {
        self.size == 1
    }
}

/// Aggregate braid statistics for one program (the paper's Tables 1–3 plus
/// the split rates of §3.1).
///
/// Fields suffixed `_excl` exclude single-instruction braids, matching the
/// starred rows of the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct BraidStats {
    /// Braids per basic block (all braids).
    pub braids_per_block: StatSummary,
    /// Braids per basic block, single-instruction braids excluded.
    pub braids_per_block_excl: StatSummary,
    /// Braid size in instructions.
    pub size: StatSummary,
    /// Braid size, singles excluded.
    pub size_excl: StatSummary,
    /// Braid width (size / longest path).
    pub width: StatSummary,
    /// Braid width, singles excluded.
    pub width_excl: StatSummary,
    /// Internal values per braid.
    pub internals: StatSummary,
    /// Internal values per braid, singles excluded.
    pub internals_excl: StatSummary,
    /// External inputs per braid.
    pub ext_inputs: StatSummary,
    /// External inputs per braid, singles excluded.
    pub ext_inputs_excl: StatSummary,
    /// External outputs per braid.
    pub ext_outputs: StatSummary,
    /// External outputs per braid, singles excluded.
    pub ext_outputs_excl: StatSummary,
    /// Histogram of braid sizes (for "99% of braids are ≤ 32 instructions").
    pub size_hist: BTreeMap<u32, u64>,
    /// Total instructions across all blocks.
    pub total_insts: u64,
    /// Instructions that are single-instruction braids.
    pub single_insts: u64,
    /// Single-instruction braids that are branches or nops (the paper
    /// reports 56%).
    pub single_branch_or_nop: u64,
    /// Braids split because of the internal working-set bound (~2% in the
    /// paper).
    pub working_set_splits: u64,
    /// Braids split for ordering constraints (<1% in the paper).
    pub order_splits: u64,
    /// Braids split by a chain-length limit (`0` for the canonical
    /// translator; only `braidc -O` candidates set one).
    pub chain_splits: u64,
    /// Total braids.
    pub total_braids: u64,
}

impl BraidStats {
    /// Folds one block's braids into the statistics.
    pub fn record_block(&mut self, measures: &[BraidMeasure]) {
        let multi = measures.iter().filter(|m| !m.is_single()).count();
        self.braids_per_block.push(measures.len() as f64);
        self.braids_per_block_excl.push(multi as f64);
        for m in measures {
            self.total_braids += 1;
            self.total_insts += m.size as u64;
            *self.size_hist.entry(m.size).or_insert(0) += 1;
            self.size.push(m.size as f64);
            self.width.push(m.width());
            self.internals.push(m.internals as f64);
            self.ext_inputs.push(m.ext_inputs as f64);
            self.ext_outputs.push(m.ext_outputs as f64);
            if m.is_single() {
                self.single_insts += 1;
                if m.is_branch_or_nop {
                    self.single_branch_or_nop += 1;
                }
            } else {
                self.size_excl.push(m.size as f64);
                self.width_excl.push(m.width());
                self.internals_excl.push(m.internals as f64);
                self.ext_inputs_excl.push(m.ext_inputs as f64);
                self.ext_outputs_excl.push(m.ext_outputs as f64);
            }
        }
    }

    /// Fraction of all instructions that are single-instruction braids (the
    /// paper reports 20%).
    pub fn single_inst_fraction(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.single_insts as f64 / self.total_insts as f64
        }
    }

    /// Fraction of braids with at most `limit` instructions (the paper:
    /// 99% of braids have 32 or fewer).
    pub fn size_cdf_at(&self, limit: u32) -> f64 {
        if self.total_braids == 0 {
            return 0.0;
        }
        let below: u64 = self.size_hist.range(..=limit).map(|(_, c)| c).sum();
        below as f64 / self.total_braids as f64
    }

    /// Fraction of braids created by splitting (working set + ordering).
    pub fn split_fraction(&self) -> f64 {
        if self.total_braids == 0 {
            return 0.0;
        }
        (self.working_set_splits + self.order_splits + self.chain_splits) as f64
            / self.total_braids as f64
    }
}

impl fmt::Display for BraidStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "braids/block {:.1} ({:.1} excl singles), size {:.1}/{:.1}, width {:.1}/{:.1}",
            self.braids_per_block.mean(),
            self.braids_per_block_excl.mean(),
            self.size.mean(),
            self.size_excl.mean(),
            self.width.mean(),
            self.width_excl.mean(),
        )?;
        write!(
            f,
            "internals {:.1}/{:.1}, ext in {:.1}/{:.1}, ext out {:.1}/{:.1}, singles {:.0}%",
            self.internals.mean(),
            self.internals_excl.mean(),
            self.ext_inputs.mean(),
            self.ext_inputs_excl.mean(),
            self.ext_outputs.mean(),
            self.ext_outputs_excl.mean(),
            self.single_inst_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn braid(size: u32, depth: u32) -> BraidMeasure {
        BraidMeasure {
            size,
            depth,
            internals: size.saturating_sub(1),
            ext_inputs: 2,
            ext_outputs: 1,
            is_branch_or_nop: false,
        }
    }

    #[test]
    fn summary_mean() {
        let mut s = StatSummary::default();
        assert_eq!(s.mean(), 0.0);
        s.push(2.0);
        s.push(4.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn width_is_size_over_depth() {
        assert_eq!(braid(6, 3).width(), 2.0);
        assert_eq!(braid(1, 1).width(), 1.0);
    }

    #[test]
    fn excl_variants_skip_singles() {
        let mut st = BraidStats::default();
        st.record_block(&[braid(1, 1), braid(3, 3), braid(5, 5)]);
        assert_eq!(st.braids_per_block.mean(), 3.0);
        assert_eq!(st.braids_per_block_excl.mean(), 2.0);
        assert_eq!(st.size.mean(), 3.0);
        assert_eq!(st.size_excl.mean(), 4.0);
        assert_eq!(st.total_insts, 9);
        assert_eq!(st.single_insts, 1);
    }

    #[test]
    fn single_fraction_counts_instructions() {
        let mut st = BraidStats::default();
        st.record_block(&[braid(1, 1), braid(4, 2)]);
        // 1 of 5 instructions is a single-instruction braid.
        assert!((st.single_inst_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn size_cdf() {
        let mut st = BraidStats::default();
        st.record_block(&[braid(2, 1), braid(2, 1), braid(40, 10)]);
        assert!((st.size_cdf_at(32) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.size_cdf_at(40), 1.0);
    }

    #[test]
    fn display_is_compact() {
        let mut st = BraidStats::default();
        st.record_block(&[braid(2, 2)]);
        let text = st.to_string();
        assert!(text.contains("braids/block"));
        assert!(text.contains("ext in"));
    }
}
