//! Two-pass register allocation (paper §3.1).
//!
//! Pass 1 — **external** registers, program-wide: a binary translator works
//! on code that already carries a valid program-wide allocation, so external
//! values keep their architectural registers (the external register
//! namespace *is* the architectural namespace).
//!
//! Pass 2 — **internal** registers, per braid: every value that lives only
//! inside a braid is assigned one of the BEU's 8 internal register file
//! entries by linear scan. The working-set splitting performed during braid
//! identification guarantees an assignment exists; this pass computes it,
//! which experiments use to validate the 8-entry bound and to model
//! internal-file occupancy.

use std::error::Error;
use std::fmt;

use braid_isa::Program;

use crate::braid::BlockBraids;
use crate::cfg::Cfg;
use crate::dataflow::{def_reg, BlockDefUse};

/// Internal-register assignment for one block.
///
/// `slot_of[p]` is the internal file slot of the value defined at
/// block-relative position `p`, for defs that write the internal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAlloc {
    /// Per-position internal slot, `None` for purely external defs.
    pub slot_of: Vec<Option<u8>>,
    /// The largest number of simultaneously occupied slots seen.
    pub peak_occupancy: u32,
}

/// Internal allocation failed: a braid's working set exceeded the internal
/// register file, which indicates a bug in working-set splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOverflow {
    /// Block in which allocation failed.
    pub block: usize,
    /// Block-relative position of the def that found no free slot.
    pub position: u32,
}

impl fmt::Display for AllocOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "internal register file overflow at block {} position {}",
            self.block, self.position
        )
    }
}

impl Error for AllocOverflow {}

/// Allocates internal register slots for every braid of a block.
///
/// # Errors
///
/// Returns [`AllocOverflow`] if any braid needs more than `max_internal`
/// simultaneously live internal values.
pub fn allocate_block(
    program: &Program,
    cfg: &Cfg,
    bb: &BlockBraids,
    du: &BlockDefUse,
    max_internal: u32,
) -> Result<BlockAlloc, AllocOverflow> {
    let blk = &cfg.blocks[bb.block];
    let mut slot_of = vec![None; blk.len()];
    let mut peak = 0u32;
    for braid in &bb.braids {
        let mut free: Vec<u8> = (0..max_internal as u8).rev().collect();
        // (last in-braid use, slot) of live values.
        let mut live: Vec<(u32, u8)> = Vec::new();
        for &p in braid {
            let idx = blk.start as usize + p as usize;
            if def_reg(program, idx).is_some() && bb.def_class[p as usize].writes_internal() {
                let last_use = du.uses_of[p as usize]
                    .iter()
                    .filter(|&&u| bb.braid_of[u as usize] == bb.braid_of[p as usize])
                    .max()
                    .copied();
                if let Some(last_use) = last_use {
                    let slot = free
                        .pop()
                        .ok_or(AllocOverflow { block: bb.block, position: p })?;
                    live.push((last_use, slot));
                    slot_of[p as usize] = Some(slot);
                    peak = peak.max(live.len() as u32);
                }
            }
            // Values whose last in-braid use is this instruction die here.
            live.retain(|&(lu, slot)| {
                if lu == p {
                    free.push(slot);
                    false
                } else {
                    true
                }
            });
        }
    }
    Ok(BlockAlloc { slot_of, peak_occupancy: peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braid::BraidSet;
    use crate::dataflow::liveness;
    use braid_isa::asm::assemble;

    fn setup(src: &str, max: u32) -> (braid_isa::Program, Cfg, Vec<BlockDefUse>, BraidSet) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let dus: Vec<BlockDefUse> =
            (0..cfg.len()).map(|b| BlockDefUse::compute(&p, &cfg, b)).collect();
        let braids = BraidSet::identify(&p, &cfg, &live, &dus, max);
        (p, cfg, dus, braids)
    }

    #[test]
    fn chain_reuses_one_slot() {
        let (p, cfg, dus, braids) = setup(
            "addq r1, r1, r2\naddq r2, r1, r2\naddq r2, r1, r2\nstq r2, 0(r9)\nhalt",
            8,
        );
        let alloc = allocate_block(&p, &cfg, &braids.blocks[0], &dus[0], 8).unwrap();
        // Each def's value dies at the next instruction, but the new def
        // allocates before the old value's last use frees it, so two slots
        // alternate.
        assert_eq!(alloc.slot_of[0], Some(0));
        assert_eq!(alloc.slot_of[1], Some(1));
        assert_eq!(alloc.slot_of[2], Some(0));
        assert_eq!(alloc.peak_occupancy, 2);
    }

    #[test]
    fn parallel_values_get_distinct_slots() {
        let (p, cfg, dus, braids) = setup(
            r#"
                addq r1, r1, r2
                addq r1, r1, r3
                addq r1, r1, r4
                addq r2, r3, r5
                addq r5, r4, r6
                stq  r6, 0(r9)
                halt
            "#,
            8,
        );
        let alloc = allocate_block(&p, &cfg, &braids.blocks[0], &dus[0], 8).unwrap();
        let slots: Vec<_> = (0..3).map(|i| alloc.slot_of[i].unwrap()).collect();
        assert_eq!(slots.len(), 3);
        assert!(slots[0] != slots[1] && slots[1] != slots[2] && slots[0] != slots[2]);
        // r2, r3, r4 live when r5 allocates: peak of 4.
        assert_eq!(alloc.peak_occupancy, 4);
    }

    #[test]
    fn split_braids_fit_small_files() {
        let src = r#"
            addq r1, r1, r2
            addq r1, r1, r3
            addq r1, r1, r4
            addq r1, r1, r5
            addq r2, r3, r6
            addq r4, r5, r7
            addq r6, r7, r8
            stq  r8, 0(r9)
            halt
        "#;
        let (p, cfg, dus, braids) = setup(src, 2);
        let alloc = allocate_block(&p, &cfg, &braids.blocks[0], &dus[0], 2).unwrap();
        assert!(alloc.peak_occupancy <= 2);
    }

    #[test]
    fn external_defs_take_no_slot() {
        let (p, cfg, dus, braids) = setup(
            "loop: lda r4, 8(r4)\nbne r4, loop\nhalt",
            8,
        );
        let bb = &braids.blocks[0];
        let alloc = allocate_block(&p, &cfg, bb, &dus[0], 8).unwrap();
        // r4 is live out (loop-carried): Dual gets a slot only if it has an
        // in-braid consumer; bne reads r4 in the same braid, so it does.
        // The key invariant: purely external defs take none.
        for (pos, class) in bb.def_class.iter().enumerate() {
            if !class.writes_internal() {
                assert_eq!(alloc.slot_of[pos], None);
            }
        }
    }
}
