//! Control-flow graph construction.

use braid_isa::{Opcode, Program};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One basic block: a maximal single-entry straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: u32,
    /// Last instruction index (exclusive).
    pub end: u32,
    /// Successor blocks reachable by direct edges. Indirect control
    /// transfers (`ret`) contribute no edges here; see [`Cfg::indirect_exits`].
    pub succs: Vec<BlockId>,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true in a valid CFG).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates over the instruction indices of the block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in ascending address order.
    pub blocks: Vec<Block>,
    /// For each instruction index, the block containing it.
    pub block_of: Vec<BlockId>,
    /// Blocks ending in an indirect transfer (`ret`), whose successors are
    /// unknown statically.
    pub indirect_exits: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `program` by leader analysis.
    ///
    /// Leaders are the entry point, every direct control target, and every
    /// instruction after a block terminator (branch, call, return or halt).
    pub fn build(program: &Program) -> Cfg {
        let n = program.insts.len();
        let mut starts = program.leaders();
        // Instruction 0 starts a block even when the entry is elsewhere, so
        // blocks tile the whole program.
        starts.push(0);
        starts.sort_unstable();
        starts.dedup();
        // Index of the block starting at each leader.
        let block_index = |idx: u32| starts.binary_search(&idx).ok();

        let mut blocks = Vec::with_capacity(starts.len());
        let mut block_of = vec![usize::MAX; n];
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n as u32);
            // A block may contain an embedded terminator only if no leader
            // follows it, which leader analysis prevents; still, the block
            // ends early at a terminator to stay a basic block.
            let mut actual_end = end;
            for i in start..end {
                if program.insts[i as usize].ends_block() {
                    actual_end = i + 1;
                    break;
                }
            }
            debug_assert_eq!(actual_end, end, "leader analysis splits at terminators");
            for i in start..actual_end {
                block_of[i as usize] = b;
            }
            blocks.push(Block { start, end: actual_end, succs: Vec::new() });
        }

        let mut indirect_exits = Vec::new();
        #[allow(clippy::needless_range_loop)] // succs written back into blocks[b]
        for b in 0..blocks.len() {
            let last_idx = blocks[b].end - 1;
            let last = &program.insts[last_idx as usize];
            let mut succs = Vec::new();
            match last.opcode {
                Opcode::Halt => {}
                Opcode::Ret => indirect_exits.push(b),
                Opcode::Br => {
                    if let Some(t) = last.target().and_then(block_index) {
                        succs.push(t);
                    }
                }
                Opcode::Call => {
                    if let Some(t) = last.target().and_then(block_index) {
                        succs.push(t);
                    }
                }
                op if op.is_cond_branch() => {
                    if let Some(t) = last.target().and_then(block_index) {
                        succs.push(t);
                    }
                    if let Some(ft) = block_index(blocks[b].end) {
                        succs.push(ft);
                    }
                }
                // Fall-through block (last ends without a terminator only at
                // the program's end, or when the next instruction is a
                // leader).
                _ => {
                    if let Some(ft) = block_index(blocks[b].end) {
                        succs.push(ft);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs;
        }

        Cfg { blocks, block_of, indirect_exits }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing the program entry.
    pub fn entry_block(&self, program: &Program) -> BlockId {
        self.block_of[program.entry as usize]
    }

    /// Predecessor lists, computed on demand.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn straight_line_is_one_block() {
        let p = assemble("nop\nnop\nhalt").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].len(), 3);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_structure() {
        let p = assemble(
            "addi r0, #4, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 3);
        // Block 0: the init; block 1: the loop body; block 2: halt.
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.blocks[1].succs, vec![1, 2]);
        assert!(cfg.blocks[2].succs.is_empty());
        assert_eq!(cfg.block_of[2], 1);
    }

    #[test]
    fn diamond() {
        let p = assemble(
            r#"
                beq r1, else
                addi r0, #1, r2
                br join
            else:
                addi r0, #2, r2
            join:
                halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        let preds = cfg.predecessors();
        assert_eq!(preds[3], vec![1, 2]);
    }

    #[test]
    fn call_and_ret_edges() {
        let p = assemble("call f, r31\nhalt\nf: nop\nret r31").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 3);
        // Call block's direct successor is the callee.
        assert_eq!(cfg.blocks[0].succs, vec![2]);
        // The ret block has an indirect exit.
        assert_eq!(cfg.indirect_exits, vec![2]);
    }

    #[test]
    fn entry_block_respected() {
        let p = assemble("halt\nstart: nop\nhalt\n.entry start").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.entry_block(&p), 1);
    }

    #[test]
    fn every_instruction_belongs_to_one_block() {
        let p = assemble(
            r#"
                beq r1, a
                nop
            a:  nop
                bne r2, a
                halt
            "#,
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        for (i, &b) in cfg.block_of.iter().enumerate() {
            assert!(b < cfg.len());
            assert!(cfg.blocks[b].range().contains(&i));
        }
        let total: usize = cfg.blocks.iter().map(Block::len).sum();
        assert_eq!(total, p.insts.len());
    }
}
