//! # braid-compiler: the braid-forming binary translator
//!
//! This crate implements the compiler half of *Achieving Out-of-Order
//! Performance with Almost In-Order Complexity* (Tseng & Patt, ISCA 2008).
//! The paper mimics a braid-aware compiler with binary profiling and binary
//! translation tools; this crate is that toolchain for BRISC programs:
//!
//! 1. [`mod@cfg`] rebuilds the control-flow graph and basic blocks.
//! 2. [`dataflow`] computes intra-block def-use chains and global register
//!    liveness.
//! 3. [`braid`] partitions each block's dataflow graph into **braids**
//!    (connected components of the intra-block def-use graph) and splits
//!    braids whose internal working set would exceed the internal register
//!    file (8 entries; the paper reports ~2% of braids split for this).
//! 4. [`order`] rearranges braids contiguously within the block (the branch
//!    braid last) subject to memory-ordering and external-register
//!    anti/output-dependence constraints, splitting braids when the
//!    constraints cannot otherwise be met (the paper reports <1%).
//! 5. [`regalloc`] performs the paper's two-pass register allocation:
//!    external values keep their program-wide architectural registers,
//!    internal values are assigned slots in the 8-entry internal file.
//! 6. [`mod@translate`] drives the pipeline and emits an annotated, reordered
//!    [`braid_isa::Program`] with the `S`/`T`/`I`/`E` bits set.
//! 7. [`stats`] measures the braid statistics of the paper's Tables 1–3.
//!
//! ## Example
//!
//! ```
//! use braid_compiler::{translate, TranslatorConfig};
//! use braid_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     loop:
//!         addq r1, r4, r10
//!         ldl  r3, 0(r10)
//!         addi r5, #1, r5
//!         cmpeq r9, r5, r7
//!         addq r3, r3, r11
//!         stl  r11, 0(r10)
//!         bne  r7, loop
//!         halt
//!     "#,
//! )?;
//! let result = translate(&program, &TranslatorConfig::default())?;
//! // The loop body is partitioned into braids; the branch braid is last.
//! assert!(result.program.insts.len() == program.insts.len());
//! assert!(result.stats.braids_per_block.mean() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod braid;
pub mod cfg;
pub mod dataflow;
pub mod order;
pub mod regalloc;
pub mod stats;
pub mod translate;
pub mod viz;

pub use braid::{BraidSet, DefClass};
pub use cfg::{BlockId, Cfg};
pub use stats::{BraidStats, StatSummary};
pub use translate::{translate, TranslateError, Translation, TranslatorConfig};
