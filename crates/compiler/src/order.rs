//! Braid ordering within a basic block.
//!
//! Braids are rearranged so each is a contiguous run of instructions, with
//! the braid containing the block terminator last (the paper: "the braid
//! containing the branch instruction is ordered to be the last braid in the
//! basic block"). Reordering must preserve:
//!
//! * the original partial order of may-aliasing memory operations (the
//!   paper's second braid-breaking condition),
//! * cross-braid register true dependences (they exist only between split
//!   siblings),
//! * external-register anti- and output-dependences. The paper does not
//!   spell these out, but they bind a binary translator just as memory
//!   ordering does: a braid that redefines an external register (`E` bit)
//!   cannot move above a braid that reads the previous value. We enforce
//!   them with the same constraint-and-split mechanism.
//!
//! When the constraints admit no order with the terminator braid last, a
//! braid is split (the paper reports <1% of braids split for ordering). The
//! usual culprit is the terminator braid itself: its early instructions
//! read external registers that later braids redefine. Splitting the
//! terminator off as a single-instruction braid resolves the cycle — and
//! matches the paper's observation that most single-instruction braids are
//! branches.

use braid_isa::Program;

use crate::braid::BlockBraids;
use crate::cfg::Cfg;
use crate::dataflow::{BlockDefUse, Liveness, READ_SLOTS};

/// Computes the constraint edges between braids of a block, as pairs of
/// braid indices `(before, after)`.
fn constraint_edges(
    program: &Program,
    cfg: &Cfg,
    bb: &BlockBraids,
    du: &BlockDefUse,
) -> Vec<(u32, u32)> {
    let blk = &cfg.blocks[bb.block];
    let len = blk.len();
    let inst = |p: usize| &program.insts[blk.start as usize + p];
    let mut edges = Vec::new();
    let mut push = |a: u32, b: u32| {
        if a != b {
            edges.push((a, b));
        }
    };

    // Memory ordering: conflicting accesses keep their original order.
    // Two accesses off the same base value at statically disjoint offsets
    // cannot overlap, whatever their (coarse, per-object) alias classes
    // say, so stream kernels touching one array many times per iteration
    // do not serialise into one braid chain. "Same base value" means the
    // same register fed by the same in-block reaching def (or live-in for
    // both); a redefinition between the accesses, e.g. an `lda` advancing
    // the stream pointer, defeats the disambiguation and we stay
    // conservative.
    let base_slot = |p: usize| if inst(p).opcode.is_store() { 1 } else { 0 };
    let provably_disjoint = |i: usize, j: usize| {
        let (a, b) = (inst(i), inst(j));
        let (sa, sb) = (base_slot(i), base_slot(j));
        a.srcs[sa] == b.srcs[sb]
            && du.src_def[i][sa] == du.src_def[j][sb]
            && ((a.imm as i64) + a.opcode.mem_bytes() as i64 <= b.imm as i64
                || (b.imm as i64) + b.opcode.mem_bytes() as i64 <= a.imm as i64)
    };
    let mem_ops: Vec<usize> = (0..len).filter(|&p| inst(p).opcode.is_mem()).collect();
    for (x, &i) in mem_ops.iter().enumerate() {
        for &j in &mem_ops[x + 1..] {
            let (a, b) = (inst(i), inst(j));
            if (a.opcode.is_store() || b.opcode.is_store())
                && a.alias.may_alias(b.alias)
                && !provably_disjoint(i, j)
            {
                push(bb.braid_of[i], bb.braid_of[j]);
            }
        }
    }

    for j in 0..len {
        // Cross-braid register true dependences (split siblings only).
        for slot in 0..READ_SLOTS {
            if let Some(d) = du.src_def[j][slot] {
                push(bb.braid_of[d as usize], bb.braid_of[j]);
            }
        }
        // Anti/output dependences on the external register namespace.
        let Some(reg) = crate::dataflow::def_reg(program, blk.start as usize + j) else {
            continue;
        };
        if !bb.def_class[j].writes_external() {
            continue;
        }
        for i in 0..j {
            // WAR: an earlier external read of `reg` must stay earlier.
            let inst_i = inst(i);
            let reads: Vec<braid_isa::Reg> = inst_i.read_regs().collect();
            for (k, r) in reads.iter().enumerate() {
                if *r != reg {
                    continue;
                }
                let slot =
                    if inst_i.opcode.reads_dest() && k == reads.len() - 1 { 2 } else { k };
                if !bb.read_is_internal(du, i as u32, slot) {
                    push(bb.braid_of[i], bb.braid_of[j]);
                }
            }
            // WAW: two external writes of `reg` keep their order.
            if crate::dataflow::def_reg(program, blk.start as usize + i) == Some(reg)
                && bb.def_class[i].writes_external()
            {
                push(bb.braid_of[i], bb.braid_of[j]);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Attempts a stable topological order of the braids (smallest original
/// first-position first) with `terminator` forced last. Returns `None` when
/// the constraints are cyclic.
fn try_order(
    n_braids: usize,
    edges: &[(u32, u32)],
    terminator: Option<u32>,
    first_pos: &[u32],
) -> Option<Vec<u32>> {
    let mut indegree = vec![0u32; n_braids];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n_braids];
    let mut edge_set: Vec<(u32, u32)> = edges.to_vec();
    if let Some(t) = terminator {
        for b in 0..n_braids as u32 {
            if b != t {
                edge_set.push((b, t));
            }
        }
        edge_set.sort_unstable();
        edge_set.dedup();
    }
    for &(a, b) in &edge_set {
        succs[a as usize].push(b);
        indegree[b as usize] += 1;
    }
    let mut order = Vec::with_capacity(n_braids);
    let mut ready: Vec<u32> =
        (0..n_braids as u32).filter(|&b| indegree[b as usize] == 0).collect();
    while !ready.is_empty() {
        // Stable choice: the ready braid whose first instruction came
        // earliest in the original block.
        let (k, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &b)| first_pos[b as usize])
            .expect("ready is non-empty");
        let b = ready.swap_remove(k);
        order.push(b);
        for &s in &succs[b as usize] {
            indegree[s as usize] -= 1;
            if indegree[s as usize] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() == n_braids {
        Some(order)
    } else {
        None
    }
}

/// Orders the braids of a block, splitting braids as needed to satisfy the
/// constraints. Returns braid indices in emission order; `bb` may gain
/// braids (splits) and its classifications are left up to date.
pub fn order_block(
    program: &Program,
    cfg: &Cfg,
    liveness: &Liveness,
    du: &BlockDefUse,
    bb: &mut BlockBraids,
) -> Vec<u32> {
    let blk = &cfg.blocks[bb.block];
    let len = blk.len();
    if len == 0 {
        return Vec::new();
    }
    let last_is_term = program.insts[blk.end as usize - 1].ends_block();
    // Every split adds one braid; `len` braids (all singletons with the
    // original order) always satisfy the constraints, so this terminates.
    loop {
        let edges = constraint_edges(program, cfg, bb, du);
        let terminator = if last_is_term { Some(bb.braid_of[len - 1]) } else { None };
        let first_pos: Vec<u32> = bb.braids.iter().map(|b| b[0]).collect();
        if let Some(order) = try_order(bb.braids.len(), &edges, terminator, &first_pos) {
            return order;
        }
        // Cycle. Prefer splitting the terminator braid's tail off: its
        // early reads are what usually conflict with terminator-last.
        let split_idx = match terminator {
            Some(t) if bb.braids[t as usize].len() >= 2 => t as usize,
            _ => bb
                .braids
                .iter()
                .enumerate()
                .filter(|(_, b)| b.len() >= 2)
                .min_by_key(|(_, b)| b[0])
                .map(|(i, _)| i)
                .expect("a cyclic constraint graph over singletons is impossible"),
        };
        let prefix = bb.braids[split_idx].len() - 1;
        bb.split_braid_at(split_idx, prefix);
        bb.classify(program, cfg, liveness, du);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braid::BraidSet;
    use crate::dataflow::liveness;
    use braid_isa::asm::assemble;

    fn setup(src: &str) -> (braid_isa::Program, Cfg, Liveness, Vec<BlockDefUse>, BraidSet) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let dus: Vec<BlockDefUse> =
            (0..cfg.len()).map(|b| BlockDefUse::compute(&p, &cfg, b)).collect();
        let braids = BraidSet::identify(&p, &cfg, &live, &dus, 8);
        (p, cfg, live, dus, braids)
    }

    fn emitted_positions(bb: &BlockBraids, order: &[u32]) -> Vec<u32> {
        order.iter().flat_map(|&b| bb.braids[b as usize].iter().copied()).collect()
    }

    #[test]
    fn terminator_ends_up_last() {
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
            loop:
                addi r5, #1, r5
                cmpeq r9, r5, r7
                addq r1, r2, r3
                stq  r3, 0(r8)
                bne  r7, loop
                halt
            "#,
        );
        let bb = &mut braids.blocks[0];
        let order = order_block(&p, &cfg, &live, &dus[0], bb);
        let pos = emitted_positions(bb, &order);
        assert_eq!(pos.len(), 5);
        assert_eq!(*pos.last().unwrap(), 4, "bne is emitted last");
    }

    #[test]
    fn memory_order_preserved_for_aliasing_ops() {
        // Store in braid A (with its producer), load in braid B; both
        // unknown alias: A must stay before B even though B's chain starts
        // earlier.
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
                addq r1, r2, r3
                stq  r3, 0(r8)
                ldq  r4, 0(r9)
                addq r4, r4, r5
                stq  r5, 8(r9)
                halt
            "#,
        );
        let bb = &mut braids.blocks[0];
        let order = order_block(&p, &cfg, &live, &dus[0], bb);
        let pos = emitted_positions(bb, &order);
        let idx_of = |p: u32| pos.iter().position(|&x| x == p).unwrap();
        assert!(idx_of(1) < idx_of(2), "store before aliasing load: {pos:?}");
        assert!(idx_of(2) < idx_of(4), "load before second store: {pos:?}");
    }

    #[test]
    fn disjoint_aliases_may_reorder() {
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
                addq r1, r2, r3
                stq  r3, 0(r8) @stack:1
                ldq  r4, 0(r9) @stack:2
                addq r4, r4, r5
                stq  r5, 8(r9) @stack:2
                halt
            "#,
        );
        let bb = &mut braids.blocks[0];
        let edges = constraint_edges(&p, &cfg, bb, &dus[0]);
        // The only memory conflict is the pair on @stack:2, same braid.
        assert!(edges.is_empty(), "edges: {edges:?}");
        let _ = order_block(&p, &cfg, &live, &dus[0], bb);
    }

    #[test]
    fn figure2_splits_branch_into_singleton() {
        // The paper's Figure 2 block: the lda rewrites r4, which the braid
        // containing the bne reads. Terminator-last + WAR forces the bne
        // off into its own single-instruction braid.
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
            loop:
                addq r17, r4, r10
                addq r16, r4, r11
                addq r8,  r4, r12
                ldl  r3, 0(r10)
                addi r5, #1, r5
                ldl  r10, 0(r11)
                cmpeq r9, r5, r7
                ldl  r11, 0(r12)
                lda  r4, 4(r4)
                andnot r3, r10, r10
                addq r0, r10, r10
                and  r10, r11, r11
                zapnot r11, #15, r11
                cmovnei r10, #1, r6
                bne  r11, loop
                halt
            "#,
        );
        let bb = &mut braids.blocks[0];
        assert_eq!(bb.braids.len(), 3);
        let order = order_block(&p, &cfg, &live, &dus[0], bb);
        let pos = emitted_positions(bb, &order);
        assert_eq!(*pos.last().unwrap(), 14, "bne last: {pos:?}");
        // The big braid stayed before the lda braid (it reads the old r4).
        let idx_of = |p: u32| pos.iter().position(|&x| x == p).unwrap();
        assert!(idx_of(0) < idx_of(8));
        assert!(idx_of(13) < idx_of(8) || idx_of(13) > idx_of(8)); // both in block
        assert!(bb.order_splits >= 1, "the bne split off");
        assert!(bb.braids.len() <= 5, "fragmentation stays modest: {:?}", bb.braids);
    }

    #[test]
    fn war_on_external_register_keeps_reader_first() {
        // Braid B redefines r4 (external, live out through the loop);
        // braid A reads the old r4. A must be emitted before B.
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
            loop:
                addq r4, r1, r2
                stq  r2, 0(r9) @stack:1
                lda  r4, 8(r4)
                bne  r2, loop
                halt
            "#,
        );
        let bb = &mut braids.blocks[0];
        let order = order_block(&p, &cfg, &live, &dus[0], bb);
        let pos = emitted_positions(bb, &order);
        let idx_of = |p: u32| pos.iter().position(|&x| x == p).unwrap();
        assert!(idx_of(0) < idx_of(2), "old r4 read before redefinition: {pos:?}");
        assert_eq!(*pos.last().unwrap(), 3);
    }

    #[test]
    fn order_is_a_permutation() {
        let (p, cfg, live, dus, mut braids) = setup(
            r#"
                addq r1, r2, r3
                ldq  r4, 0(r9)
                addq r4, r3, r5
                stq  r5, 0(r9)
                addi r6, #1, r6
                beq  r6, 0
                halt
            "#,
        );
        #[allow(clippy::needless_range_loop)] // parallel indexing of braids and dus
        for b in 0..cfg.len() {
            let bb = &mut braids.blocks[b];
            let order = order_block(&p, &cfg, &live, &dus[b], bb);
            let mut pos = emitted_positions(bb, &order);
            pos.sort_unstable();
            let expect: Vec<u32> = (0..cfg.blocks[b].len() as u32).collect();
            assert_eq!(pos, expect, "block {b} emits each instruction once");
        }
    }
}
