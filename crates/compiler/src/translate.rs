//! The top-level binary translation pipeline.

use std::error::Error;
use std::fmt;

use braid_isa::{IsaError, Program};

use crate::braid::{external_inputs, longest_path, BraidSet, DefClass};
use crate::cfg::Cfg;
use crate::dataflow::{liveness, BlockDefUse};
use crate::order::order_block;
use crate::regalloc::{allocate_block, AllocOverflow};
use crate::stats::{BraidMeasure, BraidStats};

/// Configuration of the braid-forming translator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatorConfig {
    /// Internal register file entries per BEU; braids whose internal
    /// working set would exceed this are split (the paper uses 8 and
    /// reports ~2% of braids split).
    pub max_internal_regs: u32,
    /// Maximum instructions per braid, `0` for unlimited (the canonical
    /// partition). Braids longer than this are chopped into consecutive
    /// pieces — the chain-length-limited candidate family `braidc -O`
    /// searches over.
    pub max_braid_len: u32,
    /// Run the static braid-contract checker (`braid-check`) over the
    /// translation before returning it, failing with
    /// [`TranslateError::Check`] on any error-severity finding. On by
    /// default in debug builds, off in release (callers that want the
    /// guarantee unconditionally run [`Translation::check`] themselves).
    pub self_check: bool,
}

impl Default for TranslatorConfig {
    fn default() -> TranslatorConfig {
        TranslatorConfig { max_internal_regs: 8, max_braid_len: 0, self_check: cfg!(debug_assertions) }
    }
}

/// One braid in the translated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BraidDesc {
    /// Block the braid belongs to.
    pub block: usize,
    /// First instruction index in the translated program.
    pub start: u32,
    /// Number of instructions.
    pub len: u32,
    /// Values written to the internal register file.
    pub internals: u32,
}

/// Result of translating a program into braid-annotated form.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The reordered, `S`/`T`/`I`/`E`-annotated program. It has exactly the
    /// instructions of the input (per block, permuted), the same block
    /// boundaries, and the same control targets.
    pub program: Program,
    /// Braids in emission order.
    pub braids: Vec<BraidDesc>,
    /// For each translated instruction, the index into [`Translation::braids`].
    pub braid_of_inst: Vec<u32>,
    /// For each original instruction index, its index in the translation.
    pub new_index_of: Vec<u32>,
    /// The paper's Tables 1–3 statistics for this program.
    pub stats: BraidStats,
}

impl Translation {
    /// Runs the full static braid-contract check over this translation:
    /// the annotated program on its own ([`braid_check::check_program`]),
    /// the reordering against `original` (`BC008`/`BC009`), and the braid
    /// descriptors against the emitted annotation bits (`BC007`).
    ///
    /// `original` must be the program this translation was produced from.
    pub fn check(&self, original: &Program, config: &braid_check::CheckConfig) -> braid_check::CheckReport {
        let mut report = braid_check::check_program(&self.program, config);
        braid_check::check_reordering(original, &self.program, &self.new_index_of, &mut report);
        let descs: Vec<braid_check::BraidDescView> = self
            .braids
            .iter()
            .map(|d| braid_check::BraidDescView {
                block: d.block,
                start: d.start,
                len: d.len,
                internals: d.internals,
            })
            .collect();
        braid_check::check_descriptors(&self.program, &descs, &self.braid_of_inst, &mut report);
        report
    }
}

/// Errors from [`translate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranslateError {
    /// The input program failed validation.
    Isa(IsaError),
    /// Internal register allocation overflowed — a working-set splitting
    /// bug, never expected on valid input.
    Alloc(AllocOverflow),
    /// The translator's own output failed the static braid-contract check
    /// (only produced when [`TranslatorConfig::self_check`] is on); always
    /// a translator bug.
    Check(Box<braid_check::CheckReport>),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Isa(e) => write!(f, "invalid input program: {e}"),
            TranslateError::Alloc(e) => write!(f, "internal allocation failed: {e}"),
            TranslateError::Check(r) => write!(f, "translation failed self-check: {r}"),
        }
    }
}

impl Error for TranslateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TranslateError::Isa(e) => Some(e),
            TranslateError::Alloc(e) => Some(e),
            TranslateError::Check(_) => None,
        }
    }
}

impl From<IsaError> for TranslateError {
    fn from(e: IsaError) -> TranslateError {
        TranslateError::Isa(e)
    }
}

impl From<AllocOverflow> for TranslateError {
    fn from(e: AllocOverflow) -> TranslateError {
        TranslateError::Alloc(e)
    }
}

/// Runs the full braid-forming pipeline on `program`.
///
/// The pipeline identifies braids per basic block, splits them for the
/// internal working-set bound, orders them contiguously (terminator braid
/// last) under memory and external-register constraints, allocates internal
/// registers, and emits the annotated program.
///
/// ```
/// use braid_compiler::{translate, TranslatorConfig};
/// use braid_isa::asm::assemble;
///
/// let program = assemble("addq r1, r2, r3\naddq r3, r3, r4\nstq r4, 0(r9)\nhalt")?;
/// let t = translate(&program, &TranslatorConfig::default())?;
/// // The three dataflow-connected instructions form one braid; its two
/// // intermediate values are internal.
/// let big = t.braids.iter().max_by_key(|d| d.len).unwrap();
/// assert_eq!(big.len, 3);
/// assert_eq!(big.internals, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`TranslateError::Isa`] for invalid inputs; internal failures
/// ([`TranslateError::Alloc`]) indicate a bug.
pub fn translate(program: &Program, config: &TranslatorConfig) -> Result<Translation, TranslateError> {
    program.validate()?;
    let cfg = Cfg::build(program);
    let live = liveness(program, &cfg);
    let dus: Vec<BlockDefUse> =
        (0..cfg.len()).map(|b| BlockDefUse::compute(program, &cfg, b)).collect();
    let mut braids = BraidSet::identify_with(
        program,
        &cfg,
        &live,
        &dus,
        config.max_internal_regs,
        config.max_braid_len,
    );

    let mut out = Program {
        name: format!("{}.braid", program.name),
        insts: Vec::with_capacity(program.insts.len()),
        entry: program.entry,
        data: program.data.clone(),
        labels: program.labels.clone(),
    };
    let mut descs: Vec<BraidDesc> = Vec::new();
    let mut braid_of_inst: Vec<u32> = Vec::with_capacity(program.insts.len());
    let mut new_index_of: Vec<u32> = vec![u32::MAX; program.insts.len()];
    let mut stats = BraidStats::default();

    #[allow(clippy::needless_range_loop)] // parallel indexing of blocks, braids, dus
    for b in 0..cfg.len() {
        let bb = &mut braids.blocks[b];
        let order = order_block(program, &cfg, &live, &dus[b], bb);
        // Validate the internal allocation (also yields slot numbers; the
        // hardware bound is what matters here).
        allocate_block(program, &cfg, bb, &dus[b], config.max_internal_regs)?;
        let blk = &cfg.blocks[b];
        let mut measures = Vec::with_capacity(order.len());
        for &bi in &order {
            let positions = &bb.braids[bi as usize];
            let braid_id = descs.len() as u32;
            let start = out.insts.len() as u32;
            let mut internals = 0u32;
            let mut ext_outputs = 0u32;
            for (k, &p) in positions.iter().enumerate() {
                let old_idx = blk.start as usize + p as usize;
                let mut inst = program.insts[old_idx];
                inst.braid.start = k == 0;
                inst.braid.t = [
                    inst.srcs[0].is_some() && bb.read_is_internal(&dus[b], p, 0),
                    inst.srcs[1].is_some() && bb.read_is_internal(&dus[b], p, 1),
                ];
                let class = bb.def_class[p as usize];
                inst.braid.internal = class.writes_internal();
                inst.braid.external = class.writes_external();
                internals += class.writes_internal() as u32;
                ext_outputs += matches!(class, DefClass::Dual | DefClass::ExternalOnly) as u32;
                new_index_of[old_idx] = out.insts.len() as u32;
                out.insts.push(inst);
                braid_of_inst.push(braid_id);
            }
            let last_inst = &program.insts[blk.start as usize + positions[positions.len() - 1] as usize];
            measures.push(BraidMeasure {
                size: positions.len() as u32,
                depth: longest_path(&dus[b], positions),
                internals,
                ext_inputs: external_inputs(program, &cfg, bb, &dus[b], positions),
                ext_outputs,
                is_branch_or_nop: positions.len() == 1
                    && (last_inst.opcode.is_branch()
                        || matches!(last_inst.opcode, braid_isa::Opcode::Nop | braid_isa::Opcode::Halt)),
            });
            descs.push(BraidDesc { block: b, start, len: positions.len() as u32, internals });
        }
        stats.record_block(&measures);
        stats.working_set_splits += bb.working_set_splits as u64;
        stats.order_splits += bb.order_splits as u64;
        stats.chain_splits += bb.chain_splits as u64;
    }

    debug_assert_eq!(out.insts.len(), program.insts.len());
    debug_assert!(out.validate().is_ok(), "translation must stay valid");
    let translation = Translation { program: out, braids: descs, braid_of_inst, new_index_of, stats };
    if config.self_check {
        let report = translation.check(
            program,
            &braid_check::CheckConfig { max_internal_regs: config.max_internal_regs },
        );
        if report.has_errors() {
            return Err(TranslateError::Check(Box::new(report)));
        }
    }
    Ok(translation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;
    use braid_isa::Opcode;

    const FIG2: &str = r#"
        loop:
            addq r17, r4, r10
            addq r16, r4, r11
            addq r8,  r4, r12
            ldl  r3, 0(r10)
            addi r5, #1, r5
            ldl  r10, 0(r11)
            cmpeq r9, r5, r7
            ldl  r11, 0(r12)
            lda  r4, 4(r4)
            andnot r3, r10, r10
            addq r0, r10, r10
            and  r10, r11, r11
            zapnot r11, #15, r11
            cmovnei r10, #1, r6
            bne  r11, loop
            halt
    "#;

    #[test]
    fn translation_preserves_shape() {
        let p = assemble(FIG2).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        assert_eq!(t.program.insts.len(), p.insts.len());
        t.program.validate().unwrap();
        // Same multiset of operations.
        assert_eq!(t.program.opcode_histogram(), p.opcode_histogram());
        // Block boundary intact: the bne is still instruction 14.
        assert_eq!(t.program.insts[14].opcode, Opcode::Bne);
        assert_eq!(t.program.insts[14].target(), Some(0));
        // Every original instruction mapped into the same block.
        for (old, &new) in t.new_index_of.iter().enumerate() {
            assert_ne!(new, u32::MAX, "instruction {old} emitted");
            let same_block = (old < 15) == ((new as usize) < 15);
            assert!(same_block, "instruction {old} stayed in its block");
        }
    }

    #[test]
    fn braids_are_contiguous_with_start_bits() {
        let p = assemble(FIG2).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        for (i, desc) in t.braids.iter().enumerate() {
            let range = desc.start as usize..(desc.start + desc.len) as usize;
            for (k, idx) in range.clone().enumerate() {
                assert_eq!(t.braid_of_inst[idx], i as u32);
                assert_eq!(t.program.insts[idx].braid.start, k == 0, "S bit at {idx}");
            }
        }
        // Descs tile the program.
        let total: u32 = t.braids.iter().map(|d| d.len).sum();
        assert_eq!(total as usize, p.insts.len());
    }

    #[test]
    fn figure2_annotation_spot_checks() {
        let p = assemble(FIG2).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        // addq r17, r4, r10: r10 internal only.
        let i0 = &t.program.insts[t.new_index_of[0] as usize];
        assert!(i0.braid.internal && !i0.braid.external);
        assert_eq!(i0.braid.t, [false, false], "reads live-in values");
        // ldl r3, 0(r10): base register comes from the internal file.
        let i3 = &t.program.insts[t.new_index_of[3] as usize];
        assert_eq!(i3.opcode, Opcode::Ldl);
        assert!(i3.braid.t[0], "base r10 is internal");
        // addi r5, #1, r5: r5 live around the loop => internal + external.
        let i4 = &t.program.insts[t.new_index_of[4] as usize];
        assert!(i4.braid.internal && i4.braid.external);
        // lda r4: external only.
        let i8 = &t.program.insts[t.new_index_of[8] as usize];
        assert!(!i8.braid.internal && i8.braid.external);
    }

    #[test]
    fn internal_values_never_cross_braids() {
        let p = assemble(FIG2).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        // A `T` source must be produced earlier in the same braid.
        for (idx, inst) in t.program.insts.iter().enumerate() {
            for (slot, &is_t) in inst.braid.t.iter().enumerate() {
                if !is_t {
                    continue;
                }
                let reg = inst.srcs[slot].unwrap();
                let my_braid = t.braid_of_inst[idx];
                let produced_in_braid = (t.braids[my_braid as usize].start as usize..idx)
                    .rev()
                    .any(|j| {
                        t.program.insts[j].written_reg() == Some(reg)
                            && t.program.insts[j].braid.internal
                    });
                assert!(produced_in_braid, "inst {idx} T-source {reg} produced in braid");
            }
        }
    }

    #[test]
    fn stats_reflect_figure2() {
        let p = assemble(FIG2).unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        // Block 0 yields >= 3 braids (paper's three, plus the split-off
        // branch); block 1 is the halt.
        assert!(t.stats.braids_per_block.mean() >= 2.0);
        assert!(t.stats.size_cdf_at(32) == 1.0);
        assert!(t.stats.total_insts == 16);
        // Some values are internal (the paper's core observation).
        assert!(t.stats.internals.mean() > 0.0);
    }

    #[test]
    fn straight_line_without_branch() {
        let p = assemble("addq r1, r2, r3\naddq r3, r3, r4\nstq r4, 0(r9)\nhalt").unwrap();
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        t.program.validate().unwrap();
        assert_eq!(t.program.insts.len(), 4);
        // halt stays last.
        assert_eq!(t.program.insts[3].opcode, Opcode::Halt);
    }

    #[test]
    fn self_check_passes_on_figure2() {
        let p = assemble(FIG2).unwrap();
        // Default config self-checks in debug builds already; run the full
        // check explicitly so the assertion holds in release too.
        let t = translate(&p, &TranslatorConfig::default()).unwrap();
        let r = t.check(&p, &braid_check::CheckConfig::default());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn self_check_rejects_a_corrupted_translation() {
        let p = assemble(FIG2).unwrap();
        let mut t = translate(&p, &TranslatorConfig::default()).unwrap();
        // Confine a dual value to the internal file: the value is consumed
        // outside its braid, so the checker must flag the lost value.
        let idx = t
            .program
            .insts
            .iter()
            .position(|i| i.braid.internal && i.braid.external)
            .expect("figure 2 has a dual def");
        t.program.insts[idx].braid.external = false;
        let r = t.check(&p, &braid_check::CheckConfig::default());
        assert!(r.has_errors(), "{r}");
    }

    #[test]
    fn invalid_program_rejected() {
        let p = Program::from_insts("empty", vec![]);
        assert!(matches!(
            translate(&p, &TranslatorConfig::default()),
            Err(TranslateError::Isa(_))
        ));
    }

    #[test]
    fn tiny_internal_file_forces_splits() {
        let src = r#"
            addq r1, r1, r2
            addq r1, r1, r3
            addq r1, r1, r4
            addq r1, r1, r5
            addq r2, r3, r6
            addq r4, r5, r7
            addq r6, r7, r8
            stq  r8, 0(r9)
            halt
        "#;
        let p = assemble(src).unwrap();
        let t2 =
            translate(&p, &TranslatorConfig { max_internal_regs: 2, ..Default::default() })
                .unwrap();
        let t8 = translate(&p, &TranslatorConfig::default()).unwrap();
        assert!(t2.stats.working_set_splits > 0);
        assert_eq!(t8.stats.working_set_splits, 0);
        assert!(t2.braids.len() > t8.braids.len());
        t2.program.validate().unwrap();
    }
}
