//! Braid identification and internal-working-set splitting.
//!
//! A braid is a connected component of the *intra-block* dataflow graph:
//! instructions are vertices, producer→consumer register edges within the
//! block are edges (the paper's "simple graph coloring algorithm" computes
//! exactly these components). Values never flow between braids of the same
//! block by construction — two instructions related by a def-use edge land
//! in the same component — so the only intra-block cross-braid register
//! communication appears when a braid is *split*, at which point the
//! crossing values are reclassified as external.

use braid_isa::{Program, Reg};

use crate::cfg::{BlockId, Cfg};
use crate::dataflow::{def_reg, BlockDefUse, Liveness, RegSet, READ_SLOTS};

/// How a register def communicates its value (drives the `I`/`E` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefClass {
    /// The instruction defines no register (or writes the zero register).
    NoDef,
    /// All consumers are in the producing braid: internal file only (`I`).
    Internal,
    /// Consumed both inside the braid and outside it (`I` and `E`).
    Dual,
    /// Consumed only outside the braid (`E`).
    ExternalOnly,
    /// Produced but never consumed — the paper measures ~4% of values; the
    /// write still goes to the external file (`E`) as in a conventional
    /// machine.
    Dead,
}

impl DefClass {
    /// Whether the def occupies an internal register file entry.
    pub fn writes_internal(self) -> bool {
        matches!(self, DefClass::Internal | DefClass::Dual)
    }

    /// Whether the def writes the external register file.
    pub fn writes_external(self) -> bool {
        matches!(self, DefClass::Dual | DefClass::ExternalOnly | DefClass::Dead)
    }
}

/// The braids of one basic block.
///
/// Positions are block-relative instruction offsets into the **original**
/// program order; reordering happens later (see [`crate::order`]).
#[derive(Debug, Clone)]
pub struct BlockBraids {
    /// The block these braids partition.
    pub block: BlockId,
    /// Braids as ascending position lists; every position appears in
    /// exactly one braid.
    pub braids: Vec<Vec<u32>>,
    /// `braid_of[p]` = index into `braids` for position `p`.
    pub braid_of: Vec<u32>,
    /// Classification of each position's def under the current partition.
    pub def_class: Vec<DefClass>,
    /// Braids split because their internal working set exceeded the
    /// internal register file.
    pub working_set_splits: u32,
    /// Braids split to satisfy ordering constraints (filled by
    /// [`crate::order`]).
    pub order_splits: u32,
    /// Braids split by the chain-length limit (`braidc -O`'s
    /// chain-length-limited candidate partitions).
    pub chain_splits: u32,
}

/// All braids of a program, one entry per CFG block.
#[derive(Debug, Clone)]
pub struct BraidSet {
    /// Per-block braids, indexed by [`BlockId`].
    pub blocks: Vec<BlockBraids>,
}

struct UnionFind(Vec<u32>);

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.0[root as usize] != root {
            root = self.0[root as usize];
        }
        let mut cur = x;
        while self.0[cur as usize] != root {
            let next = self.0[cur as usize];
            self.0[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root id under the smaller so components are
            // canonically identified by their first position.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi as usize] = lo;
        }
    }
}

impl BlockBraids {
    /// Identifies the braids of `block` and splits any whose internal
    /// working set exceeds `max_internal` registers.
    pub fn identify(
        program: &Program,
        cfg: &Cfg,
        liveness: &Liveness,
        du: &BlockDefUse,
        block: BlockId,
        max_internal: u32,
    ) -> BlockBraids {
        BlockBraids::identify_with(program, cfg, liveness, du, block, max_internal, 0)
    }

    /// Like [`BlockBraids::identify`], additionally chopping every braid
    /// to at most `max_braid_len` instructions (`0` = unlimited). Length
    /// chopping runs after the working-set split and is followed by a
    /// reclassification, so `T`/`I`/`E` placement stays consistent with
    /// the final partition.
    #[allow(clippy::too_many_arguments)]
    pub fn identify_with(
        program: &Program,
        cfg: &Cfg,
        liveness: &Liveness,
        du: &BlockDefUse,
        block: BlockId,
        max_internal: u32,
        max_braid_len: u32,
    ) -> BlockBraids {
        let len = cfg.blocks[block].len();
        let mut uf = UnionFind::new(len);
        for (p, slots) in du.src_def.iter().enumerate() {
            for d in slots.iter().flatten() {
                uf.union(p as u32, *d);
            }
        }
        // Group positions by component, ordered by first position.
        let mut braids: Vec<Vec<u32>> = Vec::new();
        let mut braid_of = vec![u32::MAX; len];
        let mut root_to_braid: Vec<(u32, u32)> = Vec::new();
        for p in 0..len as u32 {
            let root = uf.find(p);
            let idx = match root_to_braid.iter().find(|&&(r, _)| r == root) {
                Some(&(_, idx)) => idx,
                None => {
                    let idx = braids.len() as u32;
                    root_to_braid.push((root, idx));
                    braids.push(Vec::new());
                    idx
                }
            };
            braids[idx as usize].push(p);
            braid_of[p as usize] = idx;
        }

        let mut bb = BlockBraids {
            block,
            braids,
            braid_of,
            def_class: vec![DefClass::NoDef; len],
            working_set_splits: 0,
            order_splits: 0,
            chain_splits: 0,
        };
        bb.classify(program, cfg, liveness, du);
        bb.split_for_working_set(program, cfg, du, max_internal);
        bb.split_for_chain_length(max_braid_len);
        bb.classify(program, cfg, liveness, du);
        bb
    }

    /// Recomputes [`DefClass`] for every position under the current braid
    /// partition.
    pub fn classify(&mut self, program: &Program, cfg: &Cfg, liveness: &Liveness, du: &BlockDefUse) {
        let blk = &cfg.blocks[self.block];
        let live_out: RegSet = liveness.live_out[self.block];
        for p in 0..blk.len() {
            let idx = blk.start as usize + p;
            let Some(reg) = def_reg(program, idx) else {
                self.def_class[p] = DefClass::NoDef;
                continue;
            };
            let my_braid = self.braid_of[p];
            let mut in_braid = false;
            let mut cross_braid = false;
            for &u in &du.uses_of[p] {
                if self.braid_of[u as usize] == my_braid {
                    in_braid = true;
                } else {
                    cross_braid = true;
                }
            }
            let escapes = cross_braid || (du.is_last_def[p] && live_out.contains(reg));
            self.def_class[p] = match (in_braid, escapes) {
                (true, false) => DefClass::Internal,
                (true, true) => DefClass::Dual,
                (false, true) => DefClass::ExternalOnly,
                (false, false) => DefClass::Dead,
            };
        }
    }

    /// Splits braids whose simultaneous-live internal value count exceeds
    /// `max_internal` (the paper's 8-entry internal register file; ~2% of
    /// braids split at this threshold).
    fn split_for_working_set(
        &mut self,
        program: &Program,
        cfg: &Cfg,
        du: &BlockDefUse,
        max_internal: u32,
    ) {
        let mut result: Vec<Vec<u32>> = Vec::new();
        let braids = std::mem::take(&mut self.braids);
        for braid in braids {
            let mut rest = braid;
            loop {
                match self.first_overflow(program, cfg, du, &rest, max_internal) {
                    None => {
                        result.push(rest);
                        break;
                    }
                    Some(cut) => {
                        debug_assert!(cut > 0, "a single def cannot overflow the internal file");
                        let tail = rest.split_off(cut);
                        result.push(rest);
                        rest = tail;
                        self.working_set_splits += 1;
                    }
                }
            }
        }
        result.sort_by_key(|b| b[0]);
        self.braids = result;
        for (i, b) in self.braids.iter().enumerate() {
            for &p in b {
                self.braid_of[p as usize] = i as u32;
            }
        }
    }

    /// Chops every braid longer than `max_len` instructions into
    /// consecutive prefix pieces (`0` disables). The RISC-V chaining line
    /// of work limits dependence chains the same way: shorter braids trade
    /// internal-forwarding coverage for earlier external availability and
    /// more BEU-level parallelism, which `braidc -O` scores per program.
    fn split_for_chain_length(&mut self, max_len: u32) {
        if max_len == 0 {
            return;
        }
        let mut result: Vec<Vec<u32>> = Vec::new();
        let braids = std::mem::take(&mut self.braids);
        for mut braid in braids {
            while braid.len() as u32 > max_len {
                let tail = braid.split_off(max_len as usize);
                result.push(braid);
                braid = tail;
                self.chain_splits += 1;
            }
            result.push(braid);
        }
        result.sort_by_key(|b| b[0]);
        self.braids = result;
        for (i, b) in self.braids.iter().enumerate() {
            for &p in b {
                self.braid_of[p as usize] = i as u32;
            }
        }
    }

    /// Returns the index *within `positions`* of the first instruction at
    /// which the internal working set would exceed `max_internal`, or
    /// `None` if the whole segment fits.
    ///
    /// The working set counts defs that write the internal file (their
    /// consumers lie within the segment) from their def until their last
    /// in-segment use.
    fn first_overflow(
        &self,
        program: &Program,
        cfg: &Cfg,
        du: &BlockDefUse,
        positions: &[u32],
        max_internal: u32,
    ) -> Option<usize> {
        let blk = &cfg.blocks[self.block];
        let in_segment = |p: u32| positions.binary_search(&p).is_ok();
        // last in-segment use of each def position in the segment
        let mut last_use: Vec<Option<u32>> = vec![None; positions.len()];
        for (i, &p) in positions.iter().enumerate() {
            for &u in &du.uses_of[p as usize] {
                if in_segment(u) {
                    last_use[i] = Some(last_use[i].map_or(u, |prev: u32| prev.max(u)));
                }
            }
        }
        let mut live = 0u32;
        // (last_use, index) of currently live defs
        let mut active: Vec<(u32, usize)> = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            // A def becomes live when produced, if consumed in-segment.
            let idx = blk.start as usize + p as usize;
            let has_def = def_reg(program, idx).is_some();
            if has_def {
                if let Some(lu) = last_use[i] {
                    live += 1;
                    if live > max_internal {
                        return Some(i);
                    }
                    active.push((lu, i));
                }
            }
            // Values whose last use is this instruction die after it.
            active.retain(|&(lu, _)| {
                if lu == p {
                    live -= 1;
                    false
                } else {
                    true
                }
            });
        }
        None
    }

    /// The maximum simultaneous internal-value count over all braids — the
    /// quantity the paper bounds by the 8-entry internal register file.
    pub fn max_working_set(&self, program: &Program, cfg: &Cfg, du: &BlockDefUse) -> u32 {
        self.braids
            .iter()
            .map(|b| {
                // Binary-search for the smallest bound that does not
                // overflow; braids are tiny so a linear probe suffices.
                let mut m = 0;
                while self.first_overflow(program, cfg, du, b, m).is_some() {
                    m += 1;
                }
                m
            })
            .max()
            .unwrap_or(0)
    }

    /// Splits braid `braid_idx` into `[prefix]` and `[rest]` after
    /// `prefix_len` instructions, used by the ordering pass to break
    /// constraint cycles. Classifications must be recomputed afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the split would leave an empty side.
    pub fn split_braid_at(&mut self, braid_idx: usize, prefix_len: usize) {
        let braid = &mut self.braids[braid_idx];
        assert!(prefix_len > 0 && prefix_len < braid.len(), "split must be proper");
        let tail = braid.split_off(prefix_len);
        let new_idx = self.braids.len() as u32;
        for &p in &tail {
            self.braid_of[p as usize] = new_idx;
        }
        self.braids.push(tail);
        self.order_splits += 1;
    }

    /// Whether `p`'s read `slot` is satisfied from the internal file
    /// (drives the `T` bit): its reaching def is in the same braid and
    /// writes the internal file.
    pub fn read_is_internal(&self, du: &BlockDefUse, p: u32, slot: usize) -> bool {
        debug_assert!(slot < READ_SLOTS);
        match du.src_def[p as usize][slot] {
            Some(d) => {
                self.braid_of[d as usize] == self.braid_of[p as usize]
                    && self.def_class[d as usize].writes_internal()
            }
            None => false,
        }
    }

    /// Number of single-instruction braids in the block.
    pub fn single_inst_braids(&self) -> usize {
        self.braids.iter().filter(|b| b.len() == 1).count()
    }
}

impl BraidSet {
    /// Identifies braids for every block of `program`.
    pub fn identify(
        program: &Program,
        cfg: &Cfg,
        liveness: &Liveness,
        dus: &[BlockDefUse],
        max_internal: u32,
    ) -> BraidSet {
        BraidSet::identify_with(program, cfg, liveness, dus, max_internal, 0)
    }

    /// Like [`BraidSet::identify`], with a chain-length limit per braid
    /// (`0` = unlimited; see [`BlockBraids::identify_with`]).
    pub fn identify_with(
        program: &Program,
        cfg: &Cfg,
        liveness: &Liveness,
        dus: &[BlockDefUse],
        max_internal: u32,
        max_braid_len: u32,
    ) -> BraidSet {
        let blocks = (0..cfg.len())
            .map(|b| {
                BlockBraids::identify_with(
                    program,
                    cfg,
                    liveness,
                    &dus[b],
                    b,
                    max_internal,
                    max_braid_len,
                )
            })
            .collect();
        BraidSet { blocks }
    }

    /// Total braids across all blocks.
    pub fn total_braids(&self) -> usize {
        self.blocks.iter().map(|b| b.braids.len()).sum()
    }
}

/// Longest dataflow path (in instructions) through a braid; the paper's
/// braid *width* is `size / longest_path`.
pub fn longest_path(du: &BlockDefUse, positions: &[u32]) -> u32 {
    let mut depth: Vec<u32> = vec![1; positions.len()];
    for (i, &p) in positions.iter().enumerate() {
        for d in du.src_def[p as usize].iter().flatten() {
            if let Ok(j) = positions.binary_search(d) {
                depth[i] = depth[i].max(depth[j] + 1);
            }
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Distinct external input registers of a braid: reads whose value comes
/// from outside the braid (live-in to the block or another braid's external
/// def).
pub fn external_inputs(
    program: &Program,
    cfg: &Cfg,
    bb: &BlockBraids,
    du: &BlockDefUse,
    positions: &[u32],
) -> u32 {
    let blk = &cfg.blocks[bb.block];
    let mut seen = RegSet::EMPTY;
    for &p in positions {
        let inst = &program.insts[blk.start as usize + p as usize];
        let reads: Vec<Reg> = inst.read_regs().collect();
        for (slot, r) in reads.iter().enumerate() {
            if r.is_zero() {
                continue;
            }
            // The implicit cmov read occupies slot 2 in src_def.
            let slot = if inst.opcode.reads_dest() && slot == reads.len() - 1 { 2 } else { slot };
            if !bb.read_is_internal(du, p, slot) {
                seen.insert(*r);
            }
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::liveness;
    use braid_isa::asm::assemble;

    fn analyze(src: &str, max_internal: u32) -> (braid_isa::Program, Cfg, Vec<BlockDefUse>, BraidSet) {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let dus: Vec<BlockDefUse> =
            (0..cfg.len()).map(|b| BlockDefUse::compute(&p, &cfg, b)).collect();
        let braids = BraidSet::identify(&p, &cfg, &live, &dus, max_internal);
        (p, cfg, dus, braids)
    }

    /// The paper's Figure 2 basic block: three braids.
    const FIG2: &str = r#"
        loop:
            addq r17, r4, r10
            addq r16, r4, r11
            addq r8,  r4, r12
            ldl  r3, 0(r10)
            addi r5, #1, r5
            ldl  r10, 0(r11)
            cmpeq r9, r5, r7
            ldl  r11, 0(r12)
            lda  r4, 4(r4)
            andnot r3, r10, r10
            addq r0, r10, r10
            and  r10, r11, r11
            zapnot r11, #15, r11
            cmovnei r10, #1, r6
            bne  r11, loop
            halt
    "#;

    #[test]
    fn figure2_forms_three_braids() {
        let (_p, _cfg, _dus, braids) = analyze(FIG2, 8);
        let block0 = &braids.blocks[0];
        assert_eq!(block0.braids.len(), 3, "braids: {:?}", block0.braids);
        // Braid 1: the x-computation chain including the loads and the bne.
        let b1 = &block0.braids[0];
        assert!(b1.contains(&0) && b1.contains(&3) && b1.contains(&9) && b1.contains(&14));
        assert_eq!(b1.len(), 12);
        // Braid 2: induction-variable increment + compare.
        let b2 = &block0.braids[1];
        assert_eq!(b2, &vec![4, 6]);
        // Braid 3: the single lda.
        assert_eq!(&block0.braids[2], &vec![8]);
        assert_eq!(block0.single_inst_braids(), 1);
    }

    #[test]
    fn figure2_classification() {
        let (_p, _cfg, _dus, braids) = analyze(FIG2, 8);
        let b = &braids.blocks[0];
        // Position 0 (addq r17,r4,r10): r10 consumed by ldl in-braid,
        // redefined later, not live out => Internal.
        assert_eq!(b.def_class[0], DefClass::Internal);
        // Position 4 (addi r5): r5 is live around the loop => Dual
        // (consumed in-braid by cmpeq and live-out).
        assert_eq!(b.def_class[4], DefClass::Dual);
        // Position 8 (lda r4): no in-braid consumer, live-out => External.
        assert_eq!(b.def_class[8], DefClass::ExternalOnly);
        // Position 13 (cmovnei r6): r6 is live out (consumed after loop in
        // the original gcc code; here nothing reads it => dead or external).
        assert!(matches!(b.def_class[13], DefClass::Dead | DefClass::ExternalOnly));
        // Branch defines nothing.
        assert_eq!(b.def_class[14], DefClass::NoDef);
    }

    #[test]
    fn independent_chains_are_separate_braids() {
        let (_p, _cfg, _dus, braids) = analyze(
            r#"
                addq r1, r2, r3
                addq r3, r3, r3
                addq r4, r5, r6
                addq r6, r6, r6
                halt
            "#,
            8,
        );
        let b = &braids.blocks[0];
        // Two chains plus the halt singleton.
        assert_eq!(b.braids.len(), 3);
        assert_eq!(b.braids[0], vec![0, 1]);
        assert_eq!(b.braids[1], vec![2, 3]);
    }

    #[test]
    fn shared_external_input_does_not_connect() {
        // Both chains read live-in r1 but never each other's values.
        let (_p, _cfg, _dus, braids) = analyze(
            "addq r1, r1, r2\naddq r1, r1, r3\nstq r2, 0(r9)\nstq r3, 8(r9)\nhalt",
            8,
        );
        let b = &braids.blocks[0];
        // chain1 = {0,2}, chain2 = {1,3}, halt singleton.
        assert_eq!(b.braids.len(), 3);
        assert_eq!(b.braids[0], vec![0, 2]);
        assert_eq!(b.braids[1], vec![1, 3]);
    }

    #[test]
    fn working_set_split_respects_limit() {
        // Produce 5 values all consumed at the end: working set of 5
        // internal values; with max_internal = 2 the braid must split.
        let src = r#"
            addq r1, r1, r2
            addq r1, r1, r3
            addq r1, r1, r4
            addq r1, r1, r5
            addq r2, r3, r6
            addq r4, r5, r7
            addq r6, r7, r8
            stq  r8, 0(r9)
            halt
        "#;
        let (p, cfg, dus, braids) = analyze(src, 2);
        let b = &braids.blocks[0];
        assert!(b.working_set_splits > 0);
        assert!(b.max_working_set(&p, &cfg, &dus[0]) <= 2);
        // With the paper's 8 registers no split happens.
        let (p2, cfg2, dus2, braids8) = analyze(src, 8);
        let b8 = &braids8.blocks[0];
        assert_eq!(b8.working_set_splits, 0);
        assert!(b8.max_working_set(&p2, &cfg2, &dus2[0]) <= 8);
        assert_eq!(b8.braids.len(), 2, "the dataflow tree plus the halt");
    }

    #[test]
    fn split_braid_reclassifies_crossing_values() {
        let src = r#"
            addq r1, r1, r2
            addq r2, r1, r3
            addq r3, r2, r4
            stq  r4, 0(r9)
            halt
        "#;
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let live = liveness(&p, &cfg);
        let du = BlockDefUse::compute(&p, &cfg, 0);
        let mut bb = BlockBraids::identify(&p, &cfg, &live, &du, 0, 8);
        let chain = bb.braids.iter().position(|b| b.len() == 4).unwrap();
        bb.split_braid_at(chain, 2);
        bb.classify(&p, &cfg, &live, &du);
        // r2 (pos 0) now feeds pos 2 in the other braid: Dual (still feeds
        // pos 1 in-braid).
        assert_eq!(bb.def_class[0], DefClass::Dual);
        // r3 (pos 1) only feeds pos 2 cross-braid: ExternalOnly.
        assert_eq!(bb.def_class[1], DefClass::ExternalOnly);
        assert_eq!(bb.order_splits, 1);
    }

    #[test]
    fn longest_path_measures_depth() {
        let (_p, _cfg, dus, braids) = analyze(
            "addq r1, r1, r2\naddq r2, r1, r3\naddq r1, r1, r4\naddq r3, r4, r5\nstq r5, 0(r9)\nhalt",
            8,
        );
        let b = &braids.blocks[0];
        let big = b.braids.iter().find(|br| br.len() == 5).unwrap();
        // 0 -> 1 -> 3 -> 4 is the longest chain: depth 4.
        assert_eq!(longest_path(&dus[0], big), 4);
    }

    #[test]
    fn external_inputs_counted_once() {
        let (p, cfg, dus, braids) = analyze(
            "addq r1, r2, r3\naddq r1, r3, r4\nstq r4, 0(r9)\nhalt",
            8,
        );
        let b = &braids.blocks[0];
        let chain = b.braids.iter().find(|br| br.len() == 3).unwrap();
        // Externals: r1 (twice, counted once), r2, r9 => 3.
        assert_eq!(external_inputs(&p, &cfg, b, &dus[0], chain), 3);
    }
}
