//! Graphviz export of a block's braids — the paper's Figure 2(c) as a
//! `dot` graph: one color per braid, solid edges for internal values,
//! dashed edges for external communication.

use std::fmt::Write as _;

use braid_isa::Program;

use crate::braid::BlockBraids;
use crate::cfg::Cfg;
use crate::dataflow::{liveness, BlockDefUse};
use crate::{BraidSet, TranslatorConfig};

const PALETTE: &[&str] = &[
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

/// Renders the dataflow graph of one basic block as Graphviz `dot` text,
/// with braids color-coded (the paper's Figure 2(c)).
pub fn block_to_dot(program: &Program, cfg: &Cfg, bb: &BlockBraids, du: &BlockDefUse) -> String {
    let blk = &cfg.blocks[bb.block];
    let mut out = String::new();
    let _ = writeln!(out, "digraph block{} {{", bb.block);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, style=filled, fontname=monospace];");
    for p in 0..blk.len() {
        let inst = &program.insts[blk.start as usize + p];
        let braid = bb.braid_of[p] as usize;
        let color = PALETTE[braid % PALETTE.len()];
        let label = format!("{inst}").replace('"', "'");
        let _ = writeln!(
            out,
            "  n{p} [label=\"{label}\", fillcolor=\"{color}\", tooltip=\"braid {braid}\"];"
        );
    }
    // Solid intra-braid edges; dashed cross-braid (external) edges.
    for (p, slots) in du.src_def.iter().enumerate() {
        for d in slots.iter().flatten() {
            let style = if bb.braid_of[*d as usize] == bb.braid_of[p] { "solid" } else { "dashed" };
            let _ = writeln!(out, "  n{d} -> n{p} [style={style}];");
        }
    }
    // External inputs appear as dashed edges from a source port.
    for (p, slots) in du.src_def.iter().enumerate() {
        let inst = &program.insts[blk.start as usize + p];
        let reads: Vec<_> = inst.read_regs().collect();
        for (slot, present) in slots.iter().enumerate() {
            if present.is_none() && slot < reads.len() && !reads[slot].is_zero() {
                let reg = reads[slot.min(reads.len() - 1)];
                let _ = writeln!(out, "  in_{reg} [label=\"{reg}\", shape=plaintext, style=\"\"];");
                let _ = writeln!(out, "  in_{reg} -> n{p} [style=dashed, color=gray];");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every block of `program` to `dot`, one digraph per block.
pub fn program_to_dot(program: &Program, config: &TranslatorConfig) -> String {
    let cfg = Cfg::build(program);
    let live = liveness(program, &cfg);
    let dus: Vec<BlockDefUse> =
        (0..cfg.len()).map(|b| BlockDefUse::compute(program, &cfg, b)).collect();
    let braids = BraidSet::identify(program, &cfg, &live, &dus, config.max_internal_regs);
    let mut out = String::new();
    #[allow(clippy::needless_range_loop)] // parallel indexing of braids and dus
    for b in 0..cfg.len() {
        out.push_str(&block_to_dot(program, &cfg, &braids.blocks[b], &dus[b]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn dot_output_is_well_formed() {
        let p = assemble(
            r#"
            loop:
                addq r1, r4, r10
                ldl  r3, 0(r10)
                addi r5, #1, r5
                cmpeq r9, r5, r7
                bne  r7, loop
                halt
            "#,
        )
        .unwrap();
        let dot = program_to_dot(&p, &TranslatorConfig::default());
        assert!(dot.contains("digraph block0"));
        assert!(dot.contains("digraph block1"), "the halt block renders too");
        // The intra-braid edge addq -> ldl is solid; the cross-braid
        // cmpeq -> bne classification depends on splits, but some dashed
        // external input edges must exist (live-in reads).
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        // Balanced braces: one close per digraph.
        assert_eq!(dot.matches("digraph").count(), dot.matches("\n}\n").count());
    }

    #[test]
    fn quotes_are_escaped() {
        let p = assemble("nop\nhalt").unwrap();
        let dot = program_to_dot(&p, &TranslatorConfig::default());
        assert!(!dot.contains("\"\"\""));
    }
}
