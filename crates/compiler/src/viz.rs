//! Graphviz export of a block's braids — the paper's Figure 2(c) as a
//! `dot` graph: one color per braid, solid edges for internal values,
//! dashed edges for external communication. Instructions implicated by
//! checker diagnostics can be highlighted (`braidc viz --check`).

use std::fmt::Write as _;

use braid_isa::Program;

use crate::braid::BlockBraids;
use crate::cfg::Cfg;
use crate::dataflow::{liveness, BlockDefUse};
use crate::{BraidSet, TranslatorConfig};

const PALETTE: &[&str] = &[
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
];

/// Escapes a string for use inside a double-quoted `dot` attribute.
fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the dataflow graph of one basic block as Graphviz `dot` text,
/// with braids color-coded (the paper's Figure 2(c)).
pub fn block_to_dot(program: &Program, cfg: &Cfg, bb: &BlockBraids, du: &BlockDefUse) -> String {
    block_to_dot_marked(program, cfg, bb, du, &[])
}

/// Like [`block_to_dot`], additionally highlighting marked instructions.
///
/// `marks` pairs an absolute instruction index with a short tag (typically
/// a `BC0xx` diagnostic code); marked nodes get a thick red border and the
/// tag in their label and tooltip. Marks outside this block are ignored, so
/// the full diagnostic list of a program can be passed to every block.
pub fn block_to_dot_marked(
    program: &Program,
    cfg: &Cfg,
    bb: &BlockBraids,
    du: &BlockDefUse,
    marks: &[(u32, String)],
) -> String {
    let blk = &cfg.blocks[bb.block];
    let mut out = String::new();
    let _ = writeln!(out, "digraph block{} {{", bb.block);
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, style=filled, fontname=monospace];");
    for p in 0..blk.len() {
        let idx = blk.start as usize + p;
        let inst = &program.insts[idx];
        let braid = bb.braid_of[p] as usize;
        let color = PALETTE[braid % PALETTE.len()];
        let tags: Vec<&str> =
            marks.iter().filter(|(i, _)| *i as usize == idx).map(|(_, t)| t.as_str()).collect();
        if tags.is_empty() {
            let label = dot_escape(&inst.to_string());
            let _ = writeln!(
                out,
                "  n{p} [label=\"{label}\", fillcolor=\"{color}\", tooltip=\"braid {braid}\"];"
            );
        } else {
            let tagged = format!("{inst}\n{}", tags.join(" "));
            let label = dot_escape(&tagged);
            let tooltip = dot_escape(&format!("braid {braid}: {}", tags.join(", ")));
            let _ = writeln!(
                out,
                "  n{p} [label=\"{label}\", fillcolor=\"{color}\", tooltip=\"{tooltip}\", \
                 color=\"#e31a1c\", penwidth=3];"
            );
        }
    }
    // Solid intra-braid edges; dashed cross-braid (external) edges.
    for (p, slots) in du.src_def.iter().enumerate() {
        for d in slots.iter().flatten() {
            let style = if bb.braid_of[*d as usize] == bb.braid_of[p] { "solid" } else { "dashed" };
            let _ = writeln!(out, "  n{d} -> n{p} [style={style}];");
        }
    }
    // Reads with no in-block def appear as dashed edges from a plaintext
    // port. Slots 0/1 are the explicit sources; slot 2 is the conditional
    // move's implicit old-destination read.
    for (p, slots) in du.src_def.iter().enumerate() {
        let inst = &program.insts[blk.start as usize + p];
        for (slot, present) in slots.iter().enumerate() {
            if present.is_some() {
                continue;
            }
            let reg = match slot {
                0 | 1 => inst.srcs[slot],
                _ if inst.opcode.reads_dest() => inst.dest,
                _ => None,
            };
            let Some(reg) = reg else { continue };
            if reg.is_zero() {
                continue;
            }
            let _ = writeln!(out, "  in_{reg} [label=\"{reg}\", shape=plaintext, style=\"\"];");
            let _ = writeln!(out, "  in_{reg} -> n{p} [style=dashed, color=gray];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every block of `program` to `dot`, one digraph per block.
pub fn program_to_dot(program: &Program, config: &TranslatorConfig) -> String {
    program_to_dot_highlight(program, config, &[])
}

/// Like [`program_to_dot`], highlighting the instructions named by `marks`
/// (absolute instruction index, tag) — see [`block_to_dot_marked`].
pub fn program_to_dot_highlight(
    program: &Program,
    config: &TranslatorConfig,
    marks: &[(u32, String)],
) -> String {
    let cfg = Cfg::build(program);
    let live = liveness(program, &cfg);
    let dus: Vec<BlockDefUse> =
        (0..cfg.len()).map(|b| BlockDefUse::compute(program, &cfg, b)).collect();
    let braids = BraidSet::identify(program, &cfg, &live, &dus, config.max_internal_regs);
    let mut out = String::new();
    #[allow(clippy::needless_range_loop)] // parallel indexing of braids and dus
    for b in 0..cfg.len() {
        out.push_str(&block_to_dot_marked(program, &cfg, &braids.blocks[b], &dus[b], marks));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn dot_output_is_well_formed() {
        let p = assemble(
            r#"
            loop:
                addq r1, r4, r10
                ldl  r3, 0(r10)
                addi r5, #1, r5
                cmpeq r9, r5, r7
                bne  r7, loop
                halt
            "#,
        )
        .unwrap();
        let dot = program_to_dot(&p, &TranslatorConfig::default());
        assert!(dot.contains("digraph block0"));
        assert!(dot.contains("digraph block1"), "the halt block renders too");
        // The intra-braid edge addq -> ldl is solid; the cross-braid
        // cmpeq -> bne classification depends on splits, but some dashed
        // external input edges must exist (live-in reads).
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dashed"));
        // Balanced braces: one close per digraph.
        assert_eq!(dot.matches("digraph").count(), dot.matches("\n}\n").count());
    }

    #[test]
    fn quotes_are_escaped() {
        let p = assemble("nop\nhalt").unwrap();
        let dot = program_to_dot(&p, &TranslatorConfig::default());
        assert!(!dot.contains("\"\"\""));
        assert_eq!(dot_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn conditional_move_input_edges_use_the_right_registers() {
        // cmovnei r10, #1, r6 reads r10 (slot 0) and its old destination
        // r6 (slot 2); both are live-in here, so both appear as input
        // ports. The old code mapped slot indices into the packed
        // read-register list and drew a spurious edge for the wrong slot.
        let p = assemble("cmovnei r10, #1, r6\nhalt").unwrap();
        let dot = program_to_dot(&p, &TranslatorConfig::default());
        assert!(dot.contains("in_r10 -> n0"), "explicit source port:\n{dot}");
        assert!(dot.contains("in_r6 -> n0"), "implicit old-dest port:\n{dot}");
        assert_eq!(dot.matches("in_r6 ->").count(), 1, "no duplicate edges");
    }

    #[test]
    fn marked_instructions_are_highlighted() {
        let p = assemble("addq r1, r2, r3\nhalt").unwrap();
        let marks = vec![(0u32, "BC005".to_string())];
        let dot = program_to_dot_highlight(&p, &TranslatorConfig::default(), &marks);
        assert!(dot.contains("penwidth=3"), "{dot}");
        assert!(dot.contains("BC005"), "{dot}");
        // The unmarked halt block renders without highlights.
        assert_eq!(dot.matches("penwidth=3").count(), 1);
    }
}
