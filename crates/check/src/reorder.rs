//! Translation-shape checks: the translated program against its original
//! (`BC005`, `BC008`, `BC009`) and against the translator's own braid
//! descriptors (`BC007`).
//!
//! These passes need the *pre-translation* program (or the translation
//! metadata), so they are separate from [`crate::check_program`], which
//! judges an annotated program on its own. In particular the version-aware
//! lost-value check here resolves the cases the local flow pass must stay
//! quiet about: whether an external read placed after a reordered def
//! wants the old value (legal WAR renaming) or the new one (a lost value)
//! is decided by the original program order.

use braid_isa::{Program, Reg};

use crate::diag::{Code, Diagnostic, Span};
use crate::model::{Blocks, RegMask};

/// A braid descriptor as seen by the checker. Mirrors the translator's
/// `BraidDesc` without depending on `braid-compiler` (the compiler depends
/// on this crate, not the other way round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BraidDescView {
    /// Block the braid claims to belong to.
    pub block: usize,
    /// First instruction index in the translated program.
    pub start: u32,
    /// Number of instructions.
    pub len: u32,
    /// Values the braid claims to write to the internal register file.
    pub internals: u32,
}

/// Checks that `translated` is a legal reordering of `original`:
///
/// * `BC009` — the translation must be a block-local permutation that
///   changes nothing but the braid annotation bits,
/// * `BC008` — per block, may-aliasing memory operations (at least one a
///   store) that are not provably disjoint must keep their original order —
///   the same legality rule the dynamic oracle enforces, applied
///   statically, and
/// * `BC005` — every external register read must observe the translated
///   image of its original reaching def (skipped when `BC009` fired; the
///   correspondence would be meaningless).
///
/// `new_index_of[i]` is the translated index of original instruction `i`.
/// Spans of `BC008`/`BC009` diagnostics refer to the **translated** program
/// where a translated index exists, so they line up with
/// [`crate::check_program`] findings.
pub fn check_reordering(
    original: &Program,
    translated: &Program,
    new_index_of: &[u32],
    report: &mut crate::CheckReport,
) {
    let n = original.insts.len();
    if translated.insts.len() != n || new_index_of.len() != n {
        report.push(Diagnostic::new(
            Code::Bc009NotAPermutation,
            Span::range(0, translated.insts.len() as u32),
            format!(
                "shape mismatch: original has {n} instructions, translation has {} \
                 (index map covers {})",
                translated.insts.len(),
                new_index_of.len()
            ),
        ));
        return;
    }

    // The index map must be a permutation of 0..n.
    let mut hit = vec![false; n];
    let mut map_ok = true;
    for (old, &new) in new_index_of.iter().enumerate() {
        let Some(slot) = hit.get_mut(new as usize) else {
            report.push(Diagnostic::new(
                Code::Bc009NotAPermutation,
                Span::inst(old as u32),
                format!("original instruction {old} maps to out-of-range index {new}"),
            ));
            map_ok = false;
            continue;
        };
        if *slot {
            report.push(Diagnostic::new(
                Code::Bc009NotAPermutation,
                Span::inst(new),
                format!("translated index {new} is claimed by more than one original instruction"),
            ));
            map_ok = false;
        }
        *slot = true;
    }
    if !map_ok {
        return; // the map is meaningless; per-pair checks would mislead
    }

    let blocks = Blocks::build(original);
    for (old, &new) in new_index_of.iter().enumerate() {
        let (a, b) = (&original.insts[old], &translated.insts[new as usize]);
        let same = a.opcode == b.opcode
            && a.dest == b.dest
            && a.srcs == b.srcs
            && a.imm == b.imm
            && a.alias == b.alias;
        if !same {
            report.push(
                Diagnostic::new(
                    Code::Bc009NotAPermutation,
                    Span::inst(new),
                    format!(
                        "translated instruction differs from original {old} beyond its braid \
                         bits (original: {a})"
                    ),
                )
                .with_inst(b.to_string()),
            );
        }
        // Block-local: same boundaries on both sides, so one range check
        // against the original's block structure suffices.
        let bo = blocks.block_of[old];
        let range = blocks.range(bo);
        if !range.contains(&(new as usize)) {
            report.push(
                Diagnostic::new(
                    Code::Bc009NotAPermutation,
                    Span::inst(new),
                    format!(
                        "original instruction {old} of block {bo} (insts {}..{}) was moved \
                         across the block boundary",
                        range.start, range.end
                    ),
                )
                .in_block(bo as u32)
                .with_inst(b.to_string()),
            );
        }
    }

    if !report.has_code(Code::Bc009NotAPermutation) {
        check_external_dataflow(original, translated, &blocks, new_index_of, report);
    }
    check_memory_order(original, &blocks, new_index_of, report);
}

/// The version-aware lost-value check (`BC005`), in two legs:
///
/// * every source that reads the external register file must observe the
///   translated image of its reaching def in the original order (or both
///   must resolve to the block's live-in value), and
/// * for every register live out of a block, the final external state of
///   the translated block must be the image of the original block's final
///   def of that register.
///
/// `T`-annotated reads go through the internal file and belong to
/// [`crate::check_program`]'s flow pass. This pass is what makes
/// cross-braid reorderings safe to leave unflagged there: a reader (or a
/// successor block) placed after an internal-only def is fine exactly when
/// the def it *originally* depended on still feeds it.
fn check_external_dataflow(
    original: &Program,
    translated: &Program,
    blocks: &Blocks,
    new_index_of: &[u32],
    report: &mut crate::CheckReport,
) {
    // Plain (annotation-free) liveness of the original program, for the
    // block-final leg.
    let nb = blocks.len();
    let mut gen = vec![RegMask::EMPTY; nb];
    let mut kill = vec![RegMask::EMPTY; nb];
    for b in 0..nb {
        for i in blocks.range(b) {
            let inst = &original.insts[i];
            let mut read = |r: Option<Reg>| {
                if let Some(r) = r {
                    if !r.is_zero() && !kill[b].contains(r) {
                        gen[b].insert(r);
                    }
                }
            };
            read(inst.srcs[0]);
            read(inst.srcs[1]);
            if inst.opcode.reads_dest() {
                read(inst.dest);
            }
            if let Some(d) = inst.dest {
                if !d.is_zero() {
                    kill[b].insert(d);
                }
            }
        }
    }
    let live_out = blocks.liveness(&gen, &kill);

    #[allow(clippy::needless_range_loop)] // parallel indexing of blocks and live_out
    for b in 0..blocks.len() {
        let range = blocks.range(b);
        for i in range.clone() {
            let ti = new_index_of[i] as usize;
            let tinst = &translated.insts[ti];
            for slot in 0..2 {
                if tinst.braid.t[slot] {
                    continue; // internal read: the flow pass's domain
                }
                let Some(r) = tinst.srcs[slot] else { continue };
                if r.is_zero() {
                    continue;
                }
                let orig_def =
                    (range.start..i).rev().find(|&j| original.insts[j].dest == Some(r));
                let ext_def = (range.start..ti).rev().find(|&tj| {
                    let x = &translated.insts[tj];
                    x.dest == Some(r) && x.braid.external
                });
                let expected = orig_def.map(|j| new_index_of[j] as usize);
                if ext_def != expected {
                    let holds = ext_def.map_or_else(
                        || "the block's live-in value".to_string(),
                        |tj| format!("the value of inst {tj}"),
                    );
                    let wanted = match (orig_def, expected) {
                        (Some(j), Some(nj)) => {
                            format!("the def of inst {nj} (original inst {j})")
                        }
                        _ => "the block's live-in value".to_string(),
                    };
                    report.push(
                        Diagnostic::new(
                            Code::Bc005LostValue,
                            Span::inst(ti as u32),
                            format!(
                                "source {r} should observe {wanted}, but the external \
                                 register file holds {holds}"
                            ),
                        )
                        .in_block(b as u32)
                        .with_inst(tinst.to_string()),
                    );
                }
            }
        }

        // Block-final leg: a live-out register must leave the block as the
        // value of the original block's final def of it.
        for ri in 0..64u8 {
            let Ok(r) = Reg::new(ri) else { continue };
            if r.is_zero() || !live_out[b].contains(r) {
                continue;
            }
            let Some(j) = range.clone().rev().find(|&j| original.insts[j].dest == Some(r))
            else {
                continue;
            };
            let final_ext = range.clone().rev().find(|&tj| {
                let x = &translated.insts[tj];
                x.dest == Some(r) && x.braid.external
            });
            let nj = new_index_of[j] as usize;
            if final_ext != Some(nj) {
                let holds = final_ext.map_or_else(
                    || "the block's live-in value".to_string(),
                    |tj| format!("the value of inst {tj}"),
                );
                report.push(
                    Diagnostic::new(
                        Code::Bc005LostValue,
                        Span::inst(nj as u32),
                        format!(
                            "{r} is live out of block {b}, but its final def (original inst \
                             {j}, translated inst {nj}) does not reach the external register \
                             file, which holds {holds} at the block's end"
                        ),
                    )
                    .in_block(b as u32)
                    .with_inst(translated.insts[nj].to_string()),
                );
            }
        }
    }
}

/// The static leg of the memory-ordering rule: mirrors the translator's
/// conflict test (`order.rs`) — and therefore the dynamic oracle's legality
/// rule — on the original program, then requires every conflicting pair to
/// keep its order under `new_index_of`.
fn check_memory_order(
    original: &Program,
    blocks: &Blocks,
    new_index_of: &[u32],
    report: &mut crate::CheckReport,
) {
    for b in 0..blocks.len() {
        let range = blocks.range(b);
        // Reaching def (in-block instruction index) of each mem op's base
        // register; `None` means live-in. Matches `BlockDefUse::src_def`.
        let mut last_def: [Option<u32>; 64] = [None; 64];
        let mut base_def: Vec<Option<u32>> = vec![None; range.len()];
        let mut mem_ops: Vec<usize> = Vec::new();
        for (k, i) in range.clone().enumerate() {
            let inst = &original.insts[i];
            if inst.opcode.is_mem() {
                let slot = if inst.opcode.is_store() { 1 } else { 0 };
                base_def[k] = inst
                    .srcs[slot]
                    .and_then(|r: Reg| last_def[r.index() as usize]);
                mem_ops.push(i);
            }
            if let Some(d) = inst.dest {
                if !d.is_zero() {
                    last_def[d.index() as usize] = Some(i as u32);
                }
            }
        }
        let base_slot = |i: usize| if original.insts[i].opcode.is_store() { 1usize } else { 0 };
        let provably_disjoint = |i: usize, j: usize| {
            let (a, c) = (&original.insts[i], &original.insts[j]);
            a.srcs[base_slot(i)] == c.srcs[base_slot(j)]
                && base_def[i - range.start] == base_def[j - range.start]
                && ((a.imm as i64) + a.opcode.mem_bytes() as i64 <= c.imm as i64
                    || (c.imm as i64) + c.opcode.mem_bytes() as i64 <= a.imm as i64)
        };
        for (x, &i) in mem_ops.iter().enumerate() {
            for &j in &mem_ops[x + 1..] {
                let (a, c) = (&original.insts[i], &original.insts[j]);
                if (a.opcode.is_store() || c.opcode.is_store())
                    && a.alias.may_alias(c.alias)
                    && !provably_disjoint(i, j)
                    && new_index_of[i] >= new_index_of[j]
                {
                    report.push(
                        Diagnostic::new(
                            Code::Bc008MemoryOrder,
                            Span::range(new_index_of[j], new_index_of[i] + 1),
                            format!(
                                "may-aliasing memory operations reordered: original insts \
                                 {i} (`{a}`) and {j} (`{c}`) now execute as {} and {}",
                                new_index_of[i], new_index_of[j]
                            ),
                        )
                        .in_block(b as u32),
                    );
                }
            }
        }
    }
}

/// Checks translation metadata against the emitted program (`BC007`): braid
/// descriptors must tile each block in order, `S` bits must sit exactly at
/// descriptor starts, `braid_of_inst` must agree with the tiling, and each
/// descriptor's `internals` count must match the `I` bits in its range.
pub fn check_descriptors(
    program: &Program,
    descs: &[BraidDescView],
    braid_of_inst: &[u32],
    report: &mut crate::CheckReport,
) {
    let n = program.insts.len() as u32;
    if braid_of_inst.len() != n as usize {
        report.push(Diagnostic::new(
            Code::Bc007Metadata,
            Span::range(0, n),
            format!(
                "braid-of-inst table covers {} instructions, program has {n}",
                braid_of_inst.len()
            ),
        ));
        return;
    }
    let blocks = Blocks::build(program);
    let mut expect = 0u32; // descriptors must tile [0, n) in order
    for (bi, d) in descs.iter().enumerate() {
        if d.start != expect || d.len == 0 || d.start + d.len > n {
            report.push(Diagnostic::new(
                Code::Bc007Metadata,
                Span::range(d.start.min(n), (d.start + d.len).min(n)),
                format!(
                    "braid {bi} descriptor [{}, {}) does not tile the program \
                     (expected start {expect})",
                    d.start,
                    d.start + d.len
                ),
            ));
            return; // tiling is broken; later per-braid checks would cascade
        }
        expect = d.start + d.len;
        for i in d.start..d.start + d.len {
            let inst = &program.insts[i as usize];
            if inst.braid.start != (i == d.start) {
                report.push(
                    Diagnostic::new(
                        Code::Bc007Metadata,
                        Span::inst(i),
                        format!(
                            "S bit of inst {i} disagrees with braid {bi} \
                             (descriptor starts at {})",
                            d.start
                        ),
                    )
                    .with_inst(inst.to_string()),
                );
            }
            if braid_of_inst[i as usize] != bi as u32 {
                report.push(Diagnostic::new(
                    Code::Bc007Metadata,
                    Span::inst(i),
                    format!(
                        "braid-of-inst says braid {}, descriptor tiling says braid {bi}",
                        braid_of_inst[i as usize]
                    ),
                ));
            }
            if blocks.block_of[i as usize] != d.block {
                report.push(
                    Diagnostic::new(
                        Code::Bc007Metadata,
                        Span::inst(i),
                        format!(
                            "braid {bi} claims block {}, but inst {i} is in block {}",
                            d.block, blocks.block_of[i as usize]
                        ),
                    )
                    .in_block(blocks.block_of[i as usize] as u32),
                );
            }
        }
        let actual_internals = (d.start..d.start + d.len)
            .filter(|&i| {
                let inst = &program.insts[i as usize];
                inst.braid.internal && inst.dest.is_some()
            })
            .count() as u32;
        if actual_internals != d.internals {
            report.push(
                Diagnostic::new(
                    Code::Bc007Metadata,
                    Span::range(d.start, d.start + d.len),
                    format!(
                        "braid {bi} claims {} internal values, annotation bits say \
                         {actual_internals}",
                        d.internals
                    ),
                )
                .in_block(d.block as u32),
            );
        }
    }
    if expect != n {
        report.push(Diagnostic::new(
            Code::Bc007Metadata,
            Span::range(expect, n),
            format!("braid descriptors cover {expect} instructions, program has {n}"),
        ));
    }
}
