//! The braid dataflow verification pass.
//!
//! The pass abstractly interprets each basic block the way the braid
//! machine executes it, tracking *which def* each register file would hold
//! at every point:
//!
//! * `ext[r]` — the def whose value the **external** register file holds
//!   (updated by `E` writes),
//! * `int[r]` — the def the braid's **internal** context holds (updated by
//!   `I` writes, cleared at every braid start),
//! * `seq[r]` — the def sequential semantics says `r` holds (updated by
//!   every def).
//!
//! A braid program is correct exactly when every read observes the def the
//! program's dataflow prescribes. Internal (`T`-annotated and implicit
//! conditional-move) reads must observe the braid's own latest def of the
//! register (`BC002` otherwise); external reads that follow a same-braid
//! internal-only def must not exist (`BC005` — the value was confined to
//! an internal file it never left). Cross-braid *interleavings* are legal
//! (that renaming freedom is the paper's point): both checks therefore
//! compare against braid-local defs, not global ones — an external read
//! after an *earlier braid's* internal-only def may be a WAR reordering
//! whose reader legitimately wants the older value, and only the
//! version-aware translation check (which sees the pre-translation
//! program) can tell those apart.
//!
//! On top of the same walk the pass derives internal-file occupancy
//! (`BC004`, the 8-entry bound), unused internal values (`BC006`), missing
//! leader `S` bits (`BC001`), and an annotation-aware liveness that flags
//! internal-only values escaping their block (`BC005` at block ends).

use braid_isa::{Program, Reg};

use crate::diag::{Code, Diagnostic, Span};
use crate::model::{Blocks, Extent, RegMask};

/// Which def a register file slot currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// The value on entry to the block.
    LiveIn,
    /// The value produced by the instruction at this index.
    Def(u32),
}

/// Runs the braid dataflow checks, appending findings to `report`.
pub(crate) fn check_braid_flow(
    program: &Program,
    blocks: &Blocks,
    exts: &[Extent],
    max_internal: u32,
    report: &mut crate::CheckReport,
) {
    // BC001: every block leader must start a braid; otherwise the previous
    // braid's internal context survives a control-flow boundary.
    for b in 0..blocks.len() {
        let lead = blocks.start[b] as usize;
        if !program.insts[lead].braid.start {
            report.push(
                Diagnostic::new(
                    Code::Bc001BraidCrossesBlock,
                    Span::inst(lead as u32),
                    format!(
                        "block leader lacks the S bit: the braid would carry internal \
                         state across the boundary of block {b}"
                    ),
                )
                .in_block(b as u32)
                .with_inst(program.insts[lead].to_string()),
            );
        }
    }

    let nb = blocks.len();
    let mut gen = vec![RegMask::EMPTY; nb];
    let mut kill = vec![RegMask::EMPTY; nb];
    // Per block: (reg, def) pairs whose final value never reached the
    // external file — errors iff the register is live out.
    let mut end_candidates: Vec<Vec<(Reg, u32)>> = vec![Vec::new(); nb];

    let mut ei = 0;
    for b in 0..nb {
        let mut ext_src = [Src::LiveIn; 64];
        let mut seq = [Src::LiveIn; 64];
        while ei < exts.len() && exts[ei].block == b {
            let e = exts[ei];
            ei += 1;
            // Internal context: cleared at every braid start.
            let mut int: [Option<u32>; 64] = [None; 64];
            // The braid's own latest def of each register.
            let mut nearest: [Option<u32>; 64] = [None; 64];
            // `I`-writing defs of this extent with their last internal use.
            let mut idefs: Vec<(u32, Option<u32>)> = Vec::new();

            for i in e.start..e.end {
                let inst = &program.insts[i as usize];
                let disasm = || inst.to_string();

                let mut internal_read = |r: Reg, what: &str, report: &mut crate::CheckReport| {
                    let ri = r.index() as usize;
                    match int[ri] {
                        None => report.push(
                            Diagnostic::new(
                                Code::Bc002BadInternalRead,
                                Span::inst(i),
                                format!(
                                    "{what} {r} reads the internal register file, but no braid \
                                     instruction has written {r} internally"
                                ),
                            )
                            .in_block(b as u32)
                            .with_inst(disasm()),
                        ),
                        Some(d) => {
                            if nearest[ri] != Some(d) {
                                let near = nearest[ri].map_or_else(
                                    || "outside the braid".to_string(),
                                    |n| format!("at inst {n}"),
                                );
                                report.push(
                                    Diagnostic::new(
                                        Code::Bc002BadInternalRead,
                                        Span::inst(i),
                                        format!(
                                            "{what} {r} reads a stale internal value (inst {d}); \
                                             the braid's latest def of {r} is {near}"
                                        ),
                                    )
                                    .in_block(b as u32)
                                    .with_inst(disasm()),
                                );
                            }
                            // The internal slot is observed either way.
                            if let Some(entry) = idefs.iter_mut().find(|(p, _)| *p == d) {
                                entry.1 = Some(i);
                            }
                        }
                    }
                };
                let external_read = |r: Reg,
                                     what: &str,
                                     seq: &[Src; 64],
                                     ext_src: &[Src; 64],
                                     gen: &mut RegMask,
                                     kill: &RegMask,
                                     report: &mut crate::CheckReport| {
                    let ri = r.index() as usize;
                    if ext_src[ri] != seq[ri] {
                        if let Src::Def(d) = seq[ri] {
                            // Only a def in the reader's own braid is
                            // provably stale: braids preserve original
                            // order internally, so the reader follows the
                            // def it cannot see. A def in an *earlier*
                            // braid of the block may be a legal WAR
                            // reordering (the reader wants the old value);
                            // the version-aware translation check decides
                            // those.
                            if d >= e.start {
                                report.push(
                                    Diagnostic::new(
                                        Code::Bc005LostValue,
                                        Span::inst(i),
                                        format!(
                                            "{what} {r} reads the external register file, but \
                                             the braid's latest value of {r} (inst {d}) was \
                                             written only to an internal file"
                                        ),
                                    )
                                    .in_block(b as u32)
                                    .with_inst(disasm())
                                    .with_def_span(Span::inst(d)),
                                );
                            }
                        }
                    }
                    if !kill.contains(r) {
                        gen.insert(r);
                    }
                };

                // Explicit source reads.
                for slot in 0..2 {
                    let Some(r) = inst.srcs[slot] else { continue };
                    if r.is_zero() {
                        continue; // reads as zero; the files are never consulted
                    }
                    if inst.braid.t[slot] {
                        internal_read(r, "source", report);
                    } else {
                        external_read(r, "source", &seq, &ext_src, &mut gen[b], &kill[b], report);
                    }
                }
                // Implicit old-destination read of conditional moves: the
                // machine prefers the internal copy when one exists.
                if inst.opcode.reads_dest() {
                    if let Some(d) = inst.dest {
                        if !d.is_zero() {
                            if int[d.index() as usize].is_some() {
                                internal_read(d, "implicit old destination", report);
                            } else {
                                external_read(
                                    d,
                                    "implicit old destination",
                                    &seq,
                                    &ext_src,
                                    &mut gen[b],
                                    &kill[b],
                                    report,
                                );
                            }
                        }
                    }
                }
                // The def.
                if let Some(d) = inst.dest {
                    if !d.is_zero() {
                        let di = d.index() as usize;
                        if inst.braid.internal {
                            int[di] = Some(i);
                            idefs.push((i, None));
                        }
                        if inst.braid.external {
                            ext_src[di] = Src::Def(i);
                            kill[b].insert(d);
                        }
                        seq[di] = Src::Def(i);
                        nearest[di] = Some(i);
                    }
                }
            }

            flush_extent(program, b, e, &idefs, max_internal, report);
        }

        // Only registers *no* def of which reached the external file are
        // locally provable losses: when an earlier braid's E def exists,
        // the sequentially-latest internal-only def may be a legal WAR
        // reordering (the E def is the architectural final value), which
        // only the version-aware translation check can decide.
        for ri in 0..64u8 {
            if let Src::Def(d) = seq[ri as usize] {
                if ext_src[ri as usize] == Src::LiveIn {
                    if let Ok(r) = Reg::new(ri) {
                        end_candidates[b].push((r, d));
                    }
                }
            }
        }
    }

    let live_out = blocks.liveness(&gen, &kill);
    for (b, candidates) in end_candidates.iter().enumerate() {
        for &(r, d) in candidates {
            if live_out[b].contains(r) {
                report.push(
                    Diagnostic::new(
                        Code::Bc005LostValue,
                        Span::inst(d),
                        format!(
                            "{r} is live out of block {b}, but its last value (inst {d}) \
                             never reaches the external register file"
                        ),
                    )
                    .in_block(b as u32)
                    .with_inst(program.insts[d as usize].to_string())
                    .with_def_span(Span::inst(d)),
                );
            }
        }
    }
}

/// Per-extent occupancy checks: `BC006` for internal values nothing reads,
/// `BC004` when the simultaneously-live internal values exceed the file.
///
/// Lifetimes mirror the translator's working-set accounting: an internal
/// def occupies an entry from its def to its last internal read — or to
/// the braid's end when nothing reads it, so corrupted `I` bits cannot
/// hide from the bound.
fn flush_extent(
    program: &Program,
    block: usize,
    e: Extent,
    idefs: &[(u32, Option<u32>)],
    max_internal: u32,
    report: &mut crate::CheckReport,
) {
    for &(d, last_use) in idefs {
        if last_use.is_none() {
            let inst = &program.insts[d as usize];
            let reg = inst.dest.map(|r| r.to_string()).unwrap_or_else(|| "?".to_string());
            report.push(
                Diagnostic::new(
                    Code::Bc006UnusedInternal,
                    Span::inst(d),
                    format!(
                        "internal value of {reg} is never read from the internal file \
                         (wasted internal-register entry)"
                    ),
                )
                .in_block(block as u32)
                .with_inst(inst.to_string())
                .with_def_span(Span::inst(d)),
            );
        }
    }

    let mut live = 0u32;
    let mut active: Vec<u32> = Vec::new(); // effective last-use indices
    let mut reported = false;
    for i in e.start..e.end {
        if let Some(&(_, last_use)) = idefs.iter().find(|(p, _)| *p == i) {
            live += 1;
            if live > max_internal && !reported {
                report.push(
                    Diagnostic::new(
                        Code::Bc004InternalOverflow,
                        Span::range(e.start, e.end),
                        format!(
                            "braid holds {live} simultaneously-live internal values at inst {i}, \
                             exceeding the {max_internal}-entry internal register file"
                        ),
                    )
                    .in_block(block as u32)
                    .with_inst(program.insts[i as usize].to_string()),
                );
                reported = true;
            }
            active.push(last_use.unwrap_or(e.end.saturating_sub(1)));
        }
        active.retain(|&lu| {
            if lu == i {
                live -= 1;
                false
            } else {
                true
            }
        });
    }
}
