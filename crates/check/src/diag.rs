//! Structured diagnostics: stable error codes, spans, severities, and the
//! human-readable / JSON renderers.

use std::fmt;

/// Stable diagnostic codes of the braid contract checker.
///
/// Codes are part of the tool's interface: tests, scripts and the
/// fault-injection harness match on them, so existing codes must never be
/// renumbered (append new ones instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `BC001`: a basic-block leader lacks the `S` bit, so the previous
    /// braid's internal context would leak across a block boundary.
    Bc001BraidCrossesBlock,
    /// `BC002`: a read annotated `T` (or a conditional move's implicit
    /// old-destination read) cannot be satisfied by the internal register
    /// file: no internal producer exists in the braid, or a later
    /// non-internal def makes the internal copy stale.
    Bc002BadInternalRead,
    /// `BC003`: ISA-level validation failed (operand shapes, register
    /// classes, targets, or the structural braid-bit rules enforced by
    /// `Inst::validate`).
    Bc003Isa,
    /// `BC004`: a braid's simultaneously-live internal values exceed the
    /// internal register file capacity.
    Bc004InternalOverflow,
    /// `BC005`: a value written only to the internal file escapes its
    /// braid — an external read observes a stale external copy, or the
    /// value is live out of its block without ever reaching the external
    /// register file.
    Bc005LostValue,
    /// `BC006` (warning): the `I` bit is set but no instruction ever reads
    /// the value from the internal file — a wasted internal-file entry.
    Bc006UnusedInternal,
    /// `BC007`: translation metadata (braid descriptors, braid-of-inst
    /// table) is inconsistent with the emitted program.
    Bc007Metadata,
    /// `BC008`: translation reordered two may-aliasing memory operations
    /// (at least one a store) that are not provably disjoint — the same
    /// legality rule the dynamic oracle enforces.
    Bc008MemoryOrder,
    /// `BC009`: the translation is not a block-local permutation of the
    /// original program, or an instruction was altered beyond its braid
    /// bits.
    Bc009NotAPermutation,
}

impl Code {
    /// The stable `BC0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Bc001BraidCrossesBlock => "BC001",
            Code::Bc002BadInternalRead => "BC002",
            Code::Bc003Isa => "BC003",
            Code::Bc004InternalOverflow => "BC004",
            Code::Bc005LostValue => "BC005",
            Code::Bc006UnusedInternal => "BC006",
            Code::Bc007Metadata => "BC007",
            Code::Bc008MemoryOrder => "BC008",
            Code::Bc009NotAPermutation => "BC009",
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Bc006UnusedInternal => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Every code, in numbering order.
    pub const ALL: &'static [Code] = &[
        Code::Bc001BraidCrossesBlock,
        Code::Bc002BadInternalRead,
        Code::Bc003Isa,
        Code::Bc004InternalOverflow,
        Code::Bc005LostValue,
        Code::Bc006UnusedInternal,
        Code::Bc007Metadata,
        Code::Bc008MemoryOrder,
        Code::Bc009NotAPermutation,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not a contract violation.
    Warning,
    /// A braid-contract violation; the program must be refused.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// An instruction-index span `[start, end)` in the checked program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First instruction index covered (inclusive).
    pub start: u32,
    /// One past the last instruction index covered.
    pub end: u32,
}

impl Span {
    /// A span covering the single instruction `idx`.
    pub fn inst(idx: u32) -> Span {
        Span { start: idx, end: idx + 1 }
    }

    /// A span covering `[start, end)`.
    pub fn range(start: u32, end: u32) -> Span {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == self.start + 1 {
            write!(f, "inst {}", self.start)
        } else {
            write!(f, "insts {}..{}", self.start, self.end)
        }
    }
}

/// One finding of the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Instruction span the finding is anchored to.
    pub span: Span,
    /// Basic block (by index in address order) containing the span, when
    /// the finding is block-local.
    pub block: Option<u32>,
    /// Human-readable description of the violation.
    pub message: String,
    /// Disassembly of the first spanned instruction, for context.
    pub inst: Option<String>,
    /// Span of the *defining* instruction the finding refers to, when it
    /// differs from (or pinpoints within) the anchor span — e.g. the
    /// internal def behind a `BC005` stale read or a `BC006` wasted entry.
    pub def_span: Option<Span>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity is derived from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, span, block: None, message: message.into(), inst: None, def_span: None }
    }

    /// Attaches the containing block index.
    pub fn in_block(mut self, block: u32) -> Diagnostic {
        self.block = Some(block);
        self
    }

    /// Attaches the disassembly of the implicated instruction.
    pub fn with_inst(mut self, inst: impl Into<String>) -> Diagnostic {
        self.inst = Some(inst.into());
        self
    }

    /// Attaches the span of the defining instruction behind the finding.
    pub fn with_def_span(mut self, span: Span) -> Diagnostic {
        self.def_span = Some(span);
        self
    }

    /// The severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)?;
        write!(f, "\n  --> {}", self.span)?;
        if let Some(b) = self.block {
            write!(f, " (block {b})")?;
        }
        if let Some(inst) = &self.inst {
            write!(f, "\n  |   {}: {inst}", self.span.start)?;
        }
        if let Some(def) = self.def_span.filter(|d| *d != self.span) {
            write!(f, "\n  |   value defined at {def}")?;
        }
        Ok(())
    }
}

/// The full result of checking one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Name of the checked program.
    pub program: String,
    /// Findings, in the order discovered (roughly instruction order per
    /// analysis pass).
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// An empty report for `program`.
    pub fn new(program: impl Into<String>) -> CheckReport {
        CheckReport { program: program.into(), diagnostics: Vec::new() }
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning).count()
    }

    /// Whether any error was found.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Whether the report is completely clean (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the machine-readable JSON form.
    ///
    /// The emitter is hand-rolled (the workspace is hermetic); strings are
    /// escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"program\":");
        json_string(&mut out, &self.program);
        out.push_str(&format!(",\"errors\":{},\"warnings\":{}", self.errors(), self.warnings()));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"start\":{},\"end\":{}",
                d.code,
                d.severity(),
                d.span.start,
                d.span.end
            ));
            if let Some(b) = d.block {
                out.push_str(&format!(",\"block\":{b}"));
            }
            if let Some(def) = d.def_span {
                out.push_str(&format!(",\"def_start\":{},\"def_end\":{}", def.start, def.end));
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            if let Some(inst) = &d.inst {
                out.push_str(",\"inst\":");
                json_string(&mut out, inst);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "check: {} is clean", self.program);
        }
        writeln!(
            f,
            "check: {} findings for {} ({} errors, {} warnings)",
            self.diagnostics.len(),
            self.program,
            self.errors(),
            self.warnings()
        )?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Appends `s` to `out` as an RFC 8259 JSON string literal (quotes
/// included). Shared by every hand-rolled JSON renderer in the workspace
/// that emits diagnostics-adjacent output.
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Bc001BraidCrossesBlock.as_str(), "BC001");
        assert_eq!(Code::Bc009NotAPermutation.as_str(), "BC009");
        assert_eq!(Code::ALL.len(), 9);
        for (i, c) in Code::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("BC{:03}", i + 1));
        }
    }

    #[test]
    fn only_unused_internal_is_a_warning() {
        for &c in Code::ALL {
            let expect =
                if c == Code::Bc006UnusedInternal { Severity::Warning } else { Severity::Error };
            assert_eq!(c.severity(), expect, "{c}");
        }
    }

    #[test]
    fn report_counts_and_flags() {
        let mut r = CheckReport::new("p");
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(Code::Bc006UnusedInternal, Span::inst(1), "w"));
        assert!(!r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(Code::Bc002BadInternalRead, Span::inst(2), "e"));
        assert!(r.has_errors());
        assert_eq!((r.errors(), r.warnings()), (1, 1));
        assert!(r.has_code(Code::Bc002BadInternalRead));
        assert!(!r.has_code(Code::Bc008MemoryOrder));
    }

    #[test]
    fn json_carries_code_and_span() {
        let mut r = CheckReport::new("demo \"x\"");
        r.push(
            Diagnostic::new(Code::Bc005LostValue, Span::inst(7), "lost \\ value")
                .in_block(2)
                .with_inst("addq r1, r2, r3"),
        );
        let j = r.to_json();
        assert!(j.contains("\"program\":\"demo \\\"x\\\"\""));
        assert!(j.contains("\"code\":\"BC005\""));
        assert!(j.contains("\"start\":7,\"end\":8"));
        assert!(j.contains("\"block\":2"));
        assert!(j.contains("\"message\":\"lost \\\\ value\""));
        assert!(j.contains("\"inst\":\"addq r1, r2, r3\""));
        assert!(j.contains("\"errors\":1,\"warnings\":0"));
    }

    #[test]
    fn def_span_renders_in_json_and_text() {
        let mut r = CheckReport::new("p");
        r.push(
            Diagnostic::new(Code::Bc005LostValue, Span::inst(5), "stale read")
                .with_def_span(Span::inst(2)),
        );
        let j = r.to_json();
        assert!(j.contains("\"start\":5,\"end\":6"));
        assert!(j.contains("\"def_start\":2,\"def_end\":3"));
        assert!(r.to_string().contains("value defined at inst 2"));

        // A def span equal to the anchor is structured data only: the text
        // renderer suppresses the redundant note.
        let mut r = CheckReport::new("p");
        r.push(
            Diagnostic::new(Code::Bc006UnusedInternal, Span::inst(4), "unused")
                .with_def_span(Span::inst(4)),
        );
        assert!(r.to_json().contains("\"def_start\":4,\"def_end\":5"));
        assert!(!r.to_string().contains("value defined at"));
    }

    #[test]
    fn text_rendering_carries_code_and_span() {
        let mut r = CheckReport::new("demo");
        r.push(Diagnostic::new(Code::Bc004InternalOverflow, Span::range(3, 9), "too many"));
        let text = r.to_string();
        assert!(text.contains("error[BC004]: too many"));
        assert!(text.contains("--> insts 3..9"));
    }
}
