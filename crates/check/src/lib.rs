//! `braid-check`: a static verifier for the braid contract.
//!
//! The braid microarchitecture (Tseng & Patt, ISCA 2008) never re-checks at
//! runtime the contract its translator must uphold: braids are contiguous
//! and confined to one basic block, internal working sets fit the 8-entry
//! internal register file, the `S`/`T`/`I`/`E` bits agree with the
//! program's def-use facts, and internal values never escape their braid.
//! This crate proves that contract per program, statically, before a single
//! cycle is simulated — and independently of the compiler's own analyses,
//! so a translator bug cannot vouch for itself.
//!
//! # Entry points
//!
//! * [`check_program`] — judge any annotated [`braid_isa::Program`] on its
//!   own: ISA validation (`BC003`), braid structure (`BC001`), internal
//!   read consistency (`BC002`), internal-file capacity (`BC004`), lost
//!   values (`BC005`) and unused internal values (`BC006`).
//! * [`check_reordering`] — compare a translation against its original:
//!   block-local permutation (`BC009`) and static memory-order legality
//!   (`BC008`, the dynamic oracle's rule applied without simulation).
//! * [`check_descriptors`] — validate translator metadata against the
//!   emitted program (`BC007`).
//!
//! Every finding is a [`Diagnostic`] with a stable `BC0xx` [`Code`], an
//! instruction-index [`Span`], a severity, and a message; a [`CheckReport`]
//! renders them human-readably via `Display` and machine-readably via
//! [`CheckReport::to_json`].
//!
//! ```
//! use braid_check::{check_program, CheckConfig};
//! use braid_isa::asm::assemble;
//!
//! // Unannotated programs are trivially well-formed braid programs
//! // (every instruction its own braid, every value external).
//! let p = assemble("addq r1, r2, r3\nhalt")?;
//! let report = check_program(&p, &CheckConfig::default());
//! assert!(report.is_clean());
//! # Ok::<(), braid_isa::IsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod flow;
mod model;
mod reorder;

pub use diag::{json_string, CheckReport, Code, Diagnostic, Severity, Span};
pub use model::{extents, Blocks, Extent, RegMask};
pub use reorder::{check_descriptors, check_reordering, BraidDescView};

/// Configuration of the static checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Internal register file entries per braid execution unit; braids
    /// whose simultaneously-live internal values exceed this are `BC004`
    /// errors. The paper's hardware (and the translator default) uses 8.
    pub max_internal_regs: u32,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig { max_internal_regs: 8 }
    }
}

/// Checks an annotated program against the braid contract.
///
/// The analyses are robust to arbitrarily malformed input: ISA-level
/// violations are reported as `BC003` diagnostics (instead of aborting at
/// the first, as [`braid_isa::Program::validate`] does) and the dataflow
/// passes still run, so a single corrupted instruction yields both its
/// structural and its dataflow consequences in one report.
pub fn check_program(program: &braid_isa::Program, config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport::new(&program.name);
    let n = program.insts.len();

    // BC003: ISA validation, re-run per instruction for spans.
    if n == 0 {
        report.push(Diagnostic::new(
            Code::Bc003Isa,
            Span::range(0, 0),
            "program has no instructions",
        ));
        return report;
    }
    if program.entry as usize >= n {
        report.push(Diagnostic::new(
            Code::Bc003Isa,
            Span::range(0, n as u32),
            format!("entry point {} is out of range", program.entry),
        ));
    }
    let mut saw_halt = false;
    for (i, inst) in program.insts.iter().enumerate() {
        if let Err(e) = inst.validate() {
            report.push(
                Diagnostic::new(Code::Bc003Isa, Span::inst(i as u32), e.to_string())
                    .with_inst(inst.to_string()),
            );
        }
        if let Some(t) = inst.target() {
            if t as usize >= n {
                report.push(
                    Diagnostic::new(
                        Code::Bc003Isa,
                        Span::inst(i as u32),
                        format!("control target {t} is out of range"),
                    )
                    .with_inst(inst.to_string()),
                );
            }
        }
        saw_halt |= inst.opcode == braid_isa::Opcode::Halt;
    }
    if !saw_halt {
        report.push(Diagnostic::new(
            Code::Bc003Isa,
            Span::range(0, n as u32),
            "program has no halt instruction",
        ));
    }

    let blocks = Blocks::build(program);
    let exts = extents(program, &blocks);
    flow::check_braid_flow(program, &blocks, &exts, config.max_internal_regs, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;
    use braid_isa::{AliasClass, BraidBits, Inst, Opcode, Program, Reg};

    fn check(p: &Program) -> CheckReport {
        check_program(p, &CheckConfig::default())
    }

    fn codes(r: &CheckReport) -> Vec<Code> {
        let mut v: Vec<Code> = r.diagnostics.iter().map(|d| d.code).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn unannotated_and_translated_programs_are_clean() {
        let p = assemble(
            "loop: addq r1, r2, r3\nstq r3, 0(r9)\naddi r1, #1, r1\nbne r1, loop\nhalt",
        )
        .unwrap();
        assert!(check(&p).is_clean(), "{}", check(&p));
    }

    #[test]
    fn bc001_leader_without_start_bit() {
        let mut p = assemble("nop\nnop\nhalt").unwrap();
        p.insts[0].braid.start = false;
        let r = check(&p);
        assert_eq!(codes(&r), vec![Code::Bc001BraidCrossesBlock]);
        assert_eq!(r.diagnostics[0].span, Span::inst(0));
    }

    #[test]
    fn bc002_internal_read_without_producer() {
        let mut p = assemble("addq r1, r2, r3\nhalt").unwrap();
        p.insts[0].braid.t[0] = true; // r1 was never written internally
        let r = check(&p);
        assert_eq!(codes(&r), vec![Code::Bc002BadInternalRead]);
        assert_eq!(r.diagnostics[0].span, Span::inst(0));
    }

    #[test]
    fn bc002_stale_internal_read() {
        // One braid: r3 written internally (inst 0), overwritten
        // externally-only (inst 1), then read via the internal file.
        let mut p =
            assemble("addq r1, r2, r3\naddq r0, r1, r3\naddq r3, r0, r4\nhalt").unwrap();
        for i in 1..3 {
            p.insts[i].braid.start = false;
        }
        p.insts[0].braid = BraidBits { start: true, t: [false, false], internal: true, external: false };
        p.insts[2].braid.t[0] = true;
        let r = check(&p);
        assert_eq!(codes(&r), vec![Code::Bc002BadInternalRead]);
        assert_eq!(r.diagnostics[0].span, Span::inst(2));
        assert!(r.diagnostics[0].message.contains("stale"), "{}", r.diagnostics[0].message);
    }

    #[test]
    fn bc003_malformed_instruction_and_missing_halt() {
        let bad = Inst {
            opcode: Opcode::Add,
            dest: None, // add requires a destination
            srcs: [Some(Reg::int(1).unwrap()), Some(Reg::int(2).unwrap())],
            imm: 0,
            alias: AliasClass::default(),
            braid: BraidBits::unannotated(false),
        };
        let p = Program::from_insts("bad", vec![bad]);
        let r = check(&p);
        assert!(r.has_code(Code::Bc003Isa));
        assert!(r.diagnostics.iter().any(|d| d.span == Span::inst(0)));
        assert!(r.diagnostics.iter().any(|d| d.message.contains("halt")));
    }

    #[test]
    fn bc004_internal_working_set_overflow() {
        // One braid with nine internal values all live to the braid's end.
        let mut src = String::new();
        for k in 0..9 {
            src.push_str(&format!("addq r1, r1, r{}\n", 2 + k));
        }
        src.push_str("halt");
        let mut p = assemble(&src).unwrap();
        for (i, inst) in p.insts.iter_mut().enumerate() {
            inst.braid.start = i == 0;
            if inst.dest.is_some() {
                inst.braid.internal = true;
                inst.braid.external = false;
            }
        }
        let r = check(&p);
        assert!(r.has_code(Code::Bc004InternalOverflow), "{r}");
        let d = r.diagnostics.iter().find(|d| d.code == Code::Bc004InternalOverflow).unwrap();
        assert_eq!(d.span, Span::range(0, 10));
        // Exactly one overflow report per extent, not one per def.
        assert_eq!(
            r.diagnostics.iter().filter(|d| d.code == Code::Bc004InternalOverflow).count(),
            1
        );
    }

    #[test]
    fn bc005_external_read_of_internal_only_value() {
        let mut p = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        // inst 1 follows in the *same* braid and reads r3 externally: it
        // provably comes after the internal-only def it cannot see.
        p.insts[1].braid.start = false;
        let r = check(&p);
        assert!(r.has_code(Code::Bc005LostValue), "{r}");
        let d = r.diagnostics.iter().find(|d| d.code == Code::Bc005LostValue).unwrap();
        assert_eq!(d.span, Span::inst(1));
    }

    #[test]
    fn cross_braid_external_read_of_older_value_is_legal() {
        // Same shape, but the reader starts its own braid: a translator
        // may legally hoist an internal-only def above a reader of the
        // *older* external value (WAR renaming), so the local pass stays
        // quiet. The def draws the BC006 unused-internal warning only.
        let mut p = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        let r = check(&p);
        assert!(!r.has_code(Code::Bc005LostValue), "{r}");
        assert!(!r.has_errors(), "{r}");
    }

    #[test]
    fn bc005_internal_value_live_out_of_block() {
        let p0 = assemble("addq r1, r2, r3\nret r31\nhalt").unwrap();
        assert!(check(&p0).is_clean());
        let mut p = p0;
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        let r = check(&p);
        assert!(r.has_code(Code::Bc005LostValue), "{r}");
        let d = r.diagnostics.iter().find(|d| d.code == Code::Bc005LostValue).unwrap();
        assert_eq!(d.span, Span::inst(0), "anchored at the confined def");
        assert!(d.message.contains("live out"), "{}", d.message);
    }

    #[test]
    fn dead_internal_value_at_block_end_is_not_lost() {
        // Same shape, but the block ends in halt: nothing is live out, so
        // the unescaped internal value is only a BC006 warning.
        let mut p = assemble("addq r1, r2, r3\nhalt").unwrap();
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        let r = check(&p);
        assert!(!r.has_code(Code::Bc005LostValue), "{r}");
        assert_eq!(codes(&r), vec![Code::Bc006UnusedInternal]);
    }

    #[test]
    fn bc006_unused_internal_is_a_warning() {
        let mut p = assemble("addq r1, r2, r3\nhalt").unwrap();
        p.insts[0].braid.internal = true; // dual write, but nothing reads it internally
        let r = check(&p);
        assert_eq!(codes(&r), vec![Code::Bc006UnusedInternal]);
        assert!(!r.has_errors());
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn bc007_descriptor_mismatches() {
        let p = assemble("addq r1, r2, r3\nhalt").unwrap();
        // Claims one braid of length 2 with an internal value; the program
        // has two S bits and no I bit.
        let descs =
            [BraidDescView { block: 0, start: 0, len: 2, internals: 1 }];
        let mut r = CheckReport::new("p");
        check_descriptors(&p, &descs, &[0, 0], &mut r);
        assert!(r.has_code(Code::Bc007Metadata), "{r}");
        assert!(r.diagnostics.iter().any(|d| d.span == Span::inst(1)), "S-bit mismatch at 1");
        assert!(r.diagnostics.iter().any(|d| d.message.contains("internal values")));
    }

    #[test]
    fn bc008_reordered_aliasing_memory_ops() {
        let orig = assemble("stq r1, 0(r9)\nldq r2, 0(r9)\nhalt").unwrap();
        let mut trans = orig.clone();
        trans.insts.swap(0, 1);
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[1, 0, 2], &mut r);
        assert_eq!(codes(&r), vec![Code::Bc008MemoryOrder]);
        assert_eq!(r.diagnostics[0].span, Span::range(0, 2));
    }

    #[test]
    fn disjoint_offsets_may_reorder() {
        let orig = assemble("stq r1, 0(r9)\nldq r2, 8(r9)\nhalt").unwrap();
        let mut trans = orig.clone();
        trans.insts.swap(0, 1);
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[1, 0, 2], &mut r);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn bc009_altered_instruction_and_broken_map() {
        let orig = assemble("addq r1, r2, r3\nhalt").unwrap();
        let mut trans = orig.clone();
        trans.insts[0].imm = 7;
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[0, 1], &mut r);
        assert_eq!(codes(&r), vec![Code::Bc009NotAPermutation]);

        let mut r2 = CheckReport::new("p");
        check_reordering(&orig, &orig.clone(), &[0, 0], &mut r2);
        assert!(r2.has_code(Code::Bc009NotAPermutation), "duplicate target index");
    }

    #[test]
    fn bc009_cross_block_move() {
        let orig = assemble("addq r1, r2, r3\nbr 3\naddq r3, r3, r4\nhalt").unwrap();
        let mut trans = orig.clone();
        trans.insts.swap(0, 2);
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[2, 1, 0, 3], &mut r);
        assert!(r.has_code(Code::Bc009NotAPermutation), "{r}");
        assert!(r.diagnostics.iter().any(|d| d.message.contains("block boundary")));
    }

    #[test]
    fn version_aware_lost_value_across_braids() {
        // The def's consumer sits in another braid, so the local flow pass
        // stays quiet — but against the original program the read provably
        // wants inst 0's value, which never reaches the external file.
        let orig = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        let mut trans = orig.clone();
        trans.insts[0].braid.internal = true;
        trans.insts[0].braid.external = false;
        assert!(!check(&trans).has_errors(), "locally ambiguous, not flagged");
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[0, 1, 2], &mut r);
        assert!(r.has_code(Code::Bc005LostValue), "{r}");
    }

    #[test]
    fn version_aware_war_hoist_is_legal() {
        // The internal-only def is hoisted above a reader of the *older*
        // value: the reader's original reaching def is the live-in, and
        // that is still what the external file holds. No finding.
        let orig = assemble("addq r3, r0, r4\naddq r1, r2, r3\nhalt").unwrap();
        let mut trans = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        trans.insts[0].braid.internal = true;
        trans.insts[0].braid.external = false;
        let mut r = CheckReport::new("p");
        check_reordering(&orig, &trans, &[1, 0, 2], &mut r);
        assert!(!r.has_code(Code::Bc005LostValue), "{r}");
    }

    #[test]
    fn golden_rendered_diagnostics() {
        // Pins the exact rendered text for one corrupted program: an
        // internal-only value read back through the external file.
        let mut p = assemble("addq r1, r2, r3\naddq r3, r0, r4\nhalt").unwrap();
        p.name = "golden".into();
        p.insts[0].braid.internal = true;
        p.insts[0].braid.external = false;
        p.insts[1].braid.start = false; // same braid: the read is provably stale
        let r = check(&p);
        let expected = "\
check: 2 findings for golden (1 errors, 1 warnings)
error[BC005]: source r3 reads the external register file, but the braid's latest value of r3 (inst 0) was written only to an internal file
  --> inst 1 (block 0)
  |   1: addq r3, r0, r4
  |   value defined at inst 0
warning[BC006]: internal value of r3 is never read from the internal file (wasted internal-register entry)
  --> inst 0 (block 0)
  |   0: addq r1, r2, r3";
        assert_eq!(r.to_string(), expected);
        let json = r.to_json();
        assert!(json.contains("\"code\":\"BC005\""));
        assert!(json.contains("\"start\":1,\"end\":2"));
        // The stale read's defining instruction rides along as a full
        // span, and BC006 carries its (self-)defining span too.
        assert!(json.contains("\"def_start\":0,\"def_end\":1"));
    }
}
