//! The checker's own program model: basic blocks, braid extents derived
//! from the `S` bits, and a small register-set/liveness toolkit.
//!
//! This deliberately re-derives block structure and dataflow from the
//! program alone instead of depending on `braid-compiler`'s analyses: a
//! verifier that trusted the compiler's own CFG and liveness would inherit
//! its bugs. The successor and conservatism rules (fall-through, direct
//! targets, `ret` treated as exiting to unknown code with every register
//! live) mirror what any binary translator of this ISA must assume, so a
//! clean translation is check-clean and vice versa.

use braid_isa::{Program, Reg};

/// A set of architectural registers as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegMask(pub u64);

impl RegMask {
    /// The empty set.
    pub const EMPTY: RegMask = RegMask(0);
    /// Every architectural register.
    pub const ALL: RegMask = RegMask(u64::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 >> r.index() & 1 == 1
    }

    /// Set union.
    pub fn union(self, other: RegMask) -> RegMask {
        RegMask(self.0 | other.0)
    }
}

/// Basic-block structure of a program, rebuilt by leader analysis.
#[derive(Debug, Clone)]
pub struct Blocks {
    /// Per block: first instruction index (inclusive).
    pub start: Vec<u32>,
    /// Per block: one past the last instruction index.
    pub end: Vec<u32>,
    /// Per block: successor block ids via direct edges.
    pub succs: Vec<Vec<usize>>,
    /// Per block: whether it exits indirectly (`ret`), making every
    /// register conservatively live-out.
    pub indirect: Vec<bool>,
    /// For each instruction index, its containing block.
    pub block_of: Vec<usize>,
}

impl Blocks {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the program had no instructions.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Instruction range of block `b`.
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.start[b] as usize..self.end[b] as usize
    }

    /// Rebuilds the block structure of `program`.
    ///
    /// Robust against malformed programs: out-of-range targets simply
    /// contribute no leader or edge (ISA validation reports them
    /// separately).
    pub fn build(program: &Program) -> Blocks {
        let n = program.insts.len();
        if n == 0 {
            return Blocks {
                start: Vec::new(),
                end: Vec::new(),
                succs: Vec::new(),
                indirect: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut starts = program.leaders();
        starts.push(0); // blocks tile the program even when entry != 0
        starts.sort_unstable();
        starts.dedup();
        let block_index = |idx: u32| starts.binary_search(&idx).ok();

        let nb = starts.len();
        let mut end = Vec::with_capacity(nb);
        let mut block_of = vec![0usize; n];
        for (b, &s) in starts.iter().enumerate() {
            let e = starts.get(b + 1).copied().unwrap_or(n as u32);
            for i in s..e {
                block_of[i as usize] = b;
            }
            end.push(e);
        }

        let mut succs = vec![Vec::new(); nb];
        let mut indirect = vec![false; nb];
        for b in 0..nb {
            let last = &program.insts[end[b] as usize - 1];
            let mut out: Vec<usize> = Vec::new();
            use braid_isa::Opcode;
            match last.opcode {
                Opcode::Halt => {}
                Opcode::Ret => indirect[b] = true,
                Opcode::Br | Opcode::Call => {
                    if let Some(t) = last.target().and_then(block_index) {
                        out.push(t);
                    }
                }
                op if op.is_cond_branch() => {
                    if let Some(t) = last.target().and_then(block_index) {
                        out.push(t);
                    }
                    if let Some(ft) = block_index(end[b]) {
                        out.push(ft);
                    }
                }
                _ => {
                    if let Some(ft) = block_index(end[b]) {
                        out.push(ft);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            succs[b] = out;
        }
        Blocks { start: starts, end, succs, indirect, block_of }
    }

    /// Backward liveness over the blocks given per-block `gen` (upward
    /// exposed uses) and `kill` sets. Indirect-exit blocks treat every
    /// register as live-out.
    pub fn liveness(&self, gen: &[RegMask], kill: &[RegMask]) -> Vec<RegMask> {
        let n = self.len();
        let mut live_in = vec![RegMask::EMPTY; n];
        let mut live_out = vec![RegMask::EMPTY; n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let mut out = if self.indirect[b] { RegMask::ALL } else { RegMask::EMPTY };
                for &s in &self.succs[b] {
                    out = out.union(live_in[s]);
                }
                let inn = RegMask(gen[b].0 | (out.0 & !kill[b].0));
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        live_out
    }
}

/// One braid extent: a maximal run of instructions within a block starting
/// at an `S` bit (or at the block leader, which must carry `S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Containing block.
    pub block: usize,
    /// First instruction index (inclusive).
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
}

/// Derives the braid extents of every block from the `S` bits. The block
/// leader always opens an extent, whether or not its `S` bit is set (a
/// missing leader `S` is reported separately as `BC001`); every other `S`
/// bit closes the previous extent.
pub fn extents(program: &Program, blocks: &Blocks) -> Vec<Extent> {
    let mut out = Vec::new();
    for b in 0..blocks.len() {
        let mut cur = blocks.start[b];
        for i in blocks.range(b).skip(1) {
            if program.insts[i].braid.start {
                out.push(Extent { block: b, start: cur, end: i as u32 });
                cur = i as u32;
            }
        }
        out.push(Extent { block: b, start: cur, end: blocks.end[b] });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_isa::asm::assemble;

    #[test]
    fn blocks_mirror_leader_analysis() {
        let p = assemble(
            "addi r0, #4, r1\nloop: subi r1, #1, r1\nbne r1, loop\nhalt",
        )
        .unwrap();
        let blocks = Blocks::build(&p);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.range(1), 1..3);
        assert_eq!(blocks.succs[0], vec![1]);
        assert_eq!(blocks.succs[1], vec![1, 2]);
        assert!(blocks.succs[2].is_empty());
        assert_eq!(blocks.block_of, vec![0, 1, 1, 2]);
    }

    #[test]
    fn ret_blocks_are_indirect() {
        let p = assemble("call f, r31\nhalt\nf: nop\nret r31").unwrap();
        let blocks = Blocks::build(&p);
        assert_eq!(blocks.indirect, vec![false, false, true]);
        assert_eq!(blocks.succs[0], vec![2], "call edge to callee");
    }

    #[test]
    fn malformed_targets_make_no_edges() {
        let mut p = assemble("beq r1, 0\nhalt").unwrap();
        p.insts[0].set_target(99);
        let blocks = Blocks::build(&p);
        assert_eq!(blocks.succs[0], vec![1], "only the fall-through survives");
    }

    #[test]
    fn extents_split_at_s_bits() {
        let mut p = assemble("addq r1, r2, r3\naddq r3, r1, r4\nstq r4, 0(r9)\nhalt").unwrap();
        // One block of 4; put S on 0 and 2.
        for (i, inst) in p.insts.iter_mut().enumerate() {
            inst.braid.start = i == 0 || i == 2;
        }
        let blocks = Blocks::build(&p);
        let ex = extents(&p, &blocks);
        assert_eq!(ex.len(), 2);
        assert_eq!((ex[0].start, ex[0].end), (0, 2));
        assert_eq!((ex[1].start, ex[1].end), (2, 4));
    }

    #[test]
    fn leader_without_s_still_opens_extent() {
        let mut p = assemble("nop\nnop\nhalt").unwrap();
        for inst in &mut p.insts {
            inst.braid.start = false;
        }
        let blocks = Blocks::build(&p);
        let ex = extents(&p, &blocks);
        assert_eq!(ex.len(), 1);
        assert_eq!((ex[0].start, ex[0].end), (0, 3));
    }

    #[test]
    fn liveness_with_all_out_on_indirect() {
        let p = assemble("f: addi r0, #1, r9\nret r31\nhalt").unwrap();
        let blocks = Blocks::build(&p);
        let n = blocks.len();
        let live_out = blocks.liveness(&vec![RegMask::EMPTY; n], &vec![RegMask::EMPTY; n]);
        assert!(live_out[0].contains(Reg::int(9).unwrap()));
    }
}
