//! The braid-lang reference interpreter — the golden model the compiled
//! BRISC output is differentially tested against.
//!
//! Semantics match the BRISC functional machine bit for bit: wrapping
//! 64-bit arithmetic, shift counts masked to 6 bits, *signed* `<`/`<=`
//! (BRISC `cmplt`/`cmple`), and array indices reduced modulo the
//! (power-of-two) array length — the same mask the code generator emits,
//! so out-of-bounds accesses cannot diverge between the two models.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{ArrayDecl, Ast, BinOp, Expr, Stmt};

/// Why interpretation stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget ran out before the program finished.
    OutOfFuel,
    /// A name was not in scope (the compiler's semantic pass rejects
    /// these; hitting one here means the caller skipped it).
    Unknown(String),
    /// An array was used as a scalar or vice versa.
    Kind(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "interpreter ran out of fuel"),
            InterpError::Unknown(n) => write!(f, "unknown name `{n}`"),
            InterpError::Kind(n) => write!(f, "kind mismatch on `{n}`"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Final architectural state of an interpreted program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// Final values of top-level scalars, in declaration order.
    pub scalars: Vec<(String, u64)>,
    /// Final contents of every declared array, in declaration order.
    pub arrays: Vec<(String, Vec<u64>)>,
    /// Statements executed (the interpreter's fuel unit).
    pub steps: u64,
}

struct Interp<'a> {
    arrays: Vec<(String, Vec<u64>)>,
    array_index: HashMap<String, usize>,
    scopes: Vec<HashMap<String, u64>>,
    fuel: u64,
    ast: &'a Ast,
    steps: u64,
}

impl Interp<'_> {
    fn lookup(&self, name: &str) -> Option<u64> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn set(&mut self, name: &str, value: u64) -> Result<(), InterpError> {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        Err(InterpError::Unknown(name.to_string()))
    }

    fn eval(&mut self, e: &Expr) -> Result<u64, InterpError> {
        Ok(match e {
            Expr::Int { value, .. } => *value as u64,
            Expr::Var { name, .. } => {
                if self.array_index.contains_key(name) && self.lookup(name).is_none() {
                    return Err(InterpError::Kind(name.clone()));
                }
                self.lookup(name).ok_or_else(|| InterpError::Unknown(name.clone()))?
            }
            Expr::Index { name, index, .. } => {
                let idx = self.eval(index)?;
                let ai = *self
                    .array_index
                    .get(name)
                    .ok_or_else(|| InterpError::Unknown(name.clone()))?;
                let arr = &self.arrays[ai].1;
                arr[(idx as usize) & (arr.len() - 1)]
            }
            Expr::Bin { op, lhs, rhs, .. } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                eval_binop(*op, a, b)
            }
            Expr::Neg { expr, .. } => self.eval(expr)?.wrapping_neg(),
        })
    }

    fn run_block(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            self.step(s)?;
        }
        Ok(())
    }

    fn step(&mut self, s: &Stmt) -> Result<(), InterpError> {
        if self.steps >= self.fuel {
            return Err(InterpError::OutOfFuel);
        }
        self.steps += 1;
        match s {
            Stmt::Let { name, value, .. } => {
                let v = self.eval(value)?;
                self.scopes.last_mut().expect("scope stack").insert(name.clone(), v);
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.eval(value)?;
                self.set(name, v)?;
            }
            Stmt::Store { name, index, value, .. } => {
                let idx = self.eval(index)?;
                let v = self.eval(value)?;
                let ai = *self
                    .array_index
                    .get(name)
                    .ok_or_else(|| InterpError::Unknown(name.clone()))?;
                let arr = &mut self.arrays[ai].1;
                let len = arr.len();
                arr[(idx as usize) & (len - 1)] = v;
            }
            Stmt::For { var, lo, hi, step, body, .. } => {
                let mut v = self.eval(lo)?;
                let hi = self.eval(hi)?;
                while (v as i64) < (hi as i64) {
                    self.scopes.push(HashMap::from([(var.clone(), v)]));
                    let r = self.run_block(body);
                    self.scopes.pop();
                    r?;
                    v = v.wrapping_add(*step as u64);
                }
            }
        }
        Ok(())
    }
}

/// Evaluates one binary operator with the BRISC functional semantics.
pub fn eval_binop(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a << (b & 63),
        BinOp::Shr => a >> (b & 63),
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::Lt => ((a as i64) < (b as i64)) as u64,
        BinOp::Le => ((a as i64) <= (b as i64)) as u64,
    }
}

fn initial_words(decl: &ArrayDecl) -> Vec<u64> {
    let mut words = vec![0u64; decl.len as usize];
    words[..decl.init.len()].copy_from_slice(&decl.init);
    words
}

/// Interprets `ast` with a statement budget of `fuel`.
///
/// # Errors
///
/// Returns [`InterpError::OutOfFuel`] if the budget runs out, or a
/// name/kind error on an AST that skipped the compiler's semantic pass.
pub fn interp(ast: &Ast, fuel: u64) -> Result<InterpResult, InterpError> {
    let mut i = Interp {
        arrays: ast.arrays.iter().map(|d| (d.name.clone(), initial_words(d))).collect(),
        array_index: ast
            .arrays
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect(),
        scopes: vec![HashMap::new()],
        fuel,
        ast,
        steps: 0,
    };
    i.run_block(&ast.stmts)?;
    let top = &i.scopes[0];
    let mut scalars = Vec::new();
    for s in &i.ast.stmts {
        if let Stmt::Let { name, .. } = s {
            if let Some(&v) = top.get(name) {
                if !scalars.iter().any(|(n, _)| n == name) {
                    scalars.push((name.clone(), v));
                }
            }
        }
    }
    Ok(InterpResult { scalars, arrays: i.arrays, steps: i.steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn sums_an_array() {
        let ast = parse(
            "array a[4] = [1, 2, 3, 4];\nlet s = 0;\nfor i in 0..4 { s = s + a[i]; }\n",
        )
        .unwrap();
        let r = interp(&ast, 10_000).unwrap();
        assert_eq!(r.scalars, vec![("s".to_string(), 10)]);
    }

    #[test]
    fn indices_wrap_modulo_length() {
        let ast = parse("array a[4];\na[6] = 9;\nlet x = a[2];\n").unwrap();
        let r = interp(&ast, 100).unwrap();
        assert_eq!(r.scalars[0].1, 9);
    }

    #[test]
    fn comparisons_are_signed() {
        let ast = parse("let x = 0 - 1;\nlet y = x < 1;\nlet z = 1 <= x;\n").unwrap();
        let r = interp(&ast, 100).unwrap();
        assert_eq!(r.scalars[1].1, 1, "-1 < 1 signed");
        assert_eq!(r.scalars[2].1, 0, "1 <= -1 signed");
    }

    #[test]
    fn fuel_bounds_runaway_loops() {
        let ast = parse("let s = 0;\nfor i in 0..100000 { s = s + 1; }\n").unwrap();
        assert_eq!(interp(&ast, 50).unwrap_err(), InterpError::OutOfFuel);
    }
}
