//! Seeded random well-typed program generator — fuzzing fuel for the
//! 300-case differential property (random source → compile →
//! `braid-check` clean → functional run byte-identical to the golden
//! interpreter).
//!
//! Generated programs are well-typed *by construction* (unique names, no
//! shadowing, in-range literals, bounded loop nests and expression depth)
//! and always terminate: loop bounds are small literals and nesting is
//! capped. Every top-level scalar is stored into a trailing `zz_out`
//! array, so comparing final memory alone observes the whole
//! architectural state.

use braid_prng::Rng;

const MAX_ARRAYS: usize = 3;
const ARRAY_LENS: [u32; 3] = [4, 8, 16];
const MAX_EXPR_DEPTH: u32 = 3;

struct GenProg {
    rng: Rng,
    out: String,
    scalars: Vec<String>,
    arrays: Vec<String>,
    loop_vars: Vec<String>,
    next_scalar: usize,
    next_loop: usize,
}

impl GenProg {
    fn small_int(&mut self) -> i64 {
        match self.rng.next_u64() % 4 {
            0 => (self.rng.next_u64() % 16) as i64,
            1 => (self.rng.next_u64() % 256) as i64,
            2 => -((self.rng.next_u64() % 64) as i64),
            _ => (self.rng.next_u64() % 65536) as i64,
        }
    }

    fn expr(&mut self, depth: u32) -> String {
        let leaf = depth >= MAX_EXPR_DEPTH || self.rng.gen_bool(0.35);
        if leaf {
            let readable: Vec<&String> =
                self.scalars.iter().chain(self.loop_vars.iter()).collect();
            match self.rng.next_u64() % 3 {
                0 if !readable.is_empty() => {
                    (*self.rng.choose(&readable)).clone()
                }
                // Index chains are bounded by the depth counter so the
                // compiler's fixed temporary pool always suffices.
                1 if !self.arrays.is_empty() && depth <= MAX_EXPR_DEPTH => {
                    let a = self.rng.choose(&self.arrays).clone();
                    let idx = self.expr(depth + 1);
                    format!("{a}[{idx}]")
                }
                _ => format!("{}", self.small_int()),
            }
        } else {
            let op = *self
                .rng
                .choose(&["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<="]);
            // Shift counts stay small so results keep interesting bits.
            let rhs = if op == "<<" || op == ">>" {
                format!("{}", self.rng.next_u64() % 8)
            } else {
                self.expr(depth + 1)
            };
            let lhs = self.expr(depth + 1);
            if self.rng.gen_bool(0.25) {
                format!("(-{lhs}) {op} ({rhs})")
            } else {
                format!("({lhs}) {op} ({rhs})")
            }
        }
    }

    fn stmt(&mut self, indent: usize, loop_depth: u32, budget: &mut u32) {
        let pad = "  ".repeat(indent);
        *budget = budget.saturating_sub(1);
        let choice = self.rng.next_u64() % 10;
        match choice {
            // New scalar.
            0..=2 => {
                let name = format!("v{}", self.next_scalar);
                self.next_scalar += 1;
                let e = self.expr(1);
                self.out.push_str(&format!("{pad}let {name} = {e};\n"));
                self.scalars.push(name);
            }
            // Reassign an existing scalar.
            3..=5 if !self.scalars.is_empty() => {
                let name = self.rng.choose(&self.scalars).clone();
                let e = self.expr(1);
                self.out.push_str(&format!("{pad}{name} = {e};\n"));
            }
            // Store into an array.
            6..=7 if !self.arrays.is_empty() => {
                let a = self.rng.choose(&self.arrays).clone();
                let idx = self.expr(2);
                let e = self.expr(1);
                self.out.push_str(&format!("{pad}{a}[{idx}] = {e};\n"));
            }
            // A loop (bounded depth, literal bounds, always terminates).
            _ if loop_depth < 2 && *budget > 0 => {
                let var = format!("i{}", self.next_loop);
                self.next_loop += 1;
                let lo = self.rng.next_u64() % 4;
                let hi = lo + 1 + self.rng.next_u64() % 12;
                let step = 1 + self.rng.next_u64() % 3;
                self.out.push_str(&format!("{pad}for {var} in {lo}..{hi} step {step} {{\n"));
                self.loop_vars.push(var);
                let scalars_before = self.scalars.len();
                let body = 1 + (self.rng.next_u64() % 3) as usize;
                for _ in 0..body {
                    self.stmt(indent + 1, loop_depth + 1, budget);
                }
                self.loop_vars.pop();
                // Scalars born inside the body die with its scope.
                self.scalars.truncate(scalars_before);
                self.out.push_str(&format!("{pad}}}\n"));
            }
            _ => {
                let name = format!("v{}", self.next_scalar);
                self.next_scalar += 1;
                let e = self.expr(1);
                self.out.push_str(&format!("{pad}let {name} = {e};\n"));
                self.scalars.push(name);
            }
        }
    }
}

/// Generates one deterministic, well-typed, terminating braid-lang
/// program from `seed`.
pub fn random_source(seed: u64) -> String {
    let mut g = GenProg {
        rng: Rng::seed_from_u64(seed ^ 0x6c6e_6c67),
        out: String::new(),
        scalars: Vec::new(),
        arrays: Vec::new(),
        loop_vars: Vec::new(),
        next_scalar: 0,
        next_loop: 0,
    };
    g.out.push_str(&format!("# braid-lang fuzz program, seed {seed}\n"));
    let narrays = 1 + (g.rng.next_u64() as usize) % MAX_ARRAYS;
    for k in 0..narrays {
        let len = ARRAY_LENS[(g.rng.next_u64() as usize) % ARRAY_LENS.len()];
        let ninit = (g.rng.next_u64() % (len as u64 + 1)) as usize;
        let init: Vec<String> =
            (0..ninit).map(|_| format!("{}", g.small_int())).collect();
        let name = format!("a{k}");
        if init.is_empty() {
            g.out.push_str(&format!("array {name}[{len}];\n"));
        } else {
            g.out.push_str(&format!("array {name}[{len}] = [{}];\n", init.join(", ")));
        }
        g.arrays.push(name);
    }
    // zz_out receives every top-level scalar at the end, so final memory
    // alone captures the whole architectural state.
    g.out.push_str("array zz_out[16];\n");
    let mut budget = 4 + (g.rng.next_u64() % 8) as u32;
    while budget > 0 {
        g.stmt(0, 0, &mut budget);
    }
    let top: Vec<String> = g.scalars.clone();
    for (slot, name) in top.iter().take(16).enumerate() {
        g.out.push_str(&format!("zz_out[{slot}] = {name};\n"));
    }
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sources_are_deterministic_and_compile() {
        for seed in 0..40 {
            let src = random_source(seed);
            assert_eq!(src, random_source(seed), "seed {seed} must be deterministic");
            let out = crate::compile(&format!("fuzz{seed}"), &src)
                .unwrap_or_else(|r| panic!("seed {seed}:\n{src}\n{r}"));
            out.program.validate().unwrap();
        }
    }
}
