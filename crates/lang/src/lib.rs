//! # braid-lang: a minimal loop-nest language compiling to BRISC
//!
//! The workload frontier opener: a tiny expression/loop language
//! (let-bindings, power-of-two arrays, `for` loops with affine bounds,
//! 64-bit integer arithmetic) with
//!
//! * a lexer and recursive-descent parser producing spanned `BL0xx`
//!   diagnostics in the `braid_check::diag` house style ([`diag`]),
//! * a reference interpreter ([`interp`]) — the golden model compiled
//!   output is differentially tested against, bit-for-bit,
//! * a code generator ([`codegen`]) emitting BRISC that always fits the
//!   register file and masks every array index in range by construction,
//! * [`compile_annotated`], which runs the existing braid translator over
//!   the output so annotated containers are `braid-check`-clean by
//!   construction, and
//! * a parameterized loop-nest family generator ([`loopnest`]) — the
//!   register-tiling knobs (tile size, unroll factor, nest depth) that
//!   produce communication-dominated workloads for the partition search.
//!
//! ```
//! let src = "array a[8];\nlet s = 0;\nfor i in 0..8 { s = s + a[i]; }\n";
//! let out = braid_lang::compile("sum", src).expect("compiles");
//! out.program.validate().expect("valid BRISC");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod diag;
pub mod genprog;
pub mod interp;
pub mod lexer;
pub mod loopnest;
pub mod parser;

use braid_isa::Program;

pub use diag::{Code, Diagnostic, LangReport, Severity, Span};

/// A successful compilation: the program plus any warnings.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The generated program (`entry` 0, trailing `halt`).
    pub program: Program,
    /// Warnings gathered along the way (never errors — errors fail the
    /// compile).
    pub report: LangReport,
}

/// Compiles `source` to an **unannotated** BRISC program named `name`
/// (single-instruction braids, all values external — the same shape as
/// the hand-written kernels; the braid core's translator annotates it
/// downstream).
///
/// # Errors
///
/// Returns the full report when any `BL0xx` error is found.
pub fn compile(name: &str, source: &str) -> Result<Compiled, LangReport> {
    let ast = parser::parse(source).map_err(|d| {
        let mut r = LangReport::new(name);
        r.push(d);
        r
    })?;
    let (program, report) = codegen::codegen(name, &ast)?;
    Ok(Compiled { program, report })
}

/// Compiles `source` and runs the braid translator over the result,
/// returning an **annotated** program that passes `braid-check` clean by
/// construction (the translator's own static contract check is re-run
/// here and any finding is reported as `BL009`).
///
/// # Errors
///
/// Returns the report on frontend errors, or with a `BL009` diagnostic
/// if translation or the braid-contract check fails (a compiler bug by
/// definition — the frontend only emits translatable programs).
pub fn compile_annotated(name: &str, source: &str) -> Result<Compiled, LangReport> {
    let Compiled { program, mut report } = compile(name, source)?;
    let tconfig = braid_compiler::TranslatorConfig { self_check: false, ..Default::default() };
    let translation = match braid_compiler::translate(&program, &tconfig) {
        Ok(t) => t,
        Err(e) => {
            report.push(Diagnostic::new(
                Code::Bl009Internal,
                Span::default(),
                format!("braid translation failed: {e}"),
            ));
            return Err(report);
        }
    };
    let check = translation.check(
        &program,
        &braid_check::CheckConfig { max_internal_regs: tconfig.max_internal_regs },
    );
    if check.has_errors() {
        report.push(Diagnostic::new(
            Code::Bl009Internal,
            Span::default(),
            format!("annotated output failed braid-check: {check}"),
        ));
        return Err(report);
    }
    let mut program = translation.program;
    program.name = name.to_string();
    Ok(Compiled { program, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_annotated_is_check_clean() {
        let src = "array a[16] = [3, 1, 4, 1, 5, 9, 2, 6];\n\
                   let s = 0;\n\
                   for i in 0..16 { s = s + a[i] * a[i]; }\n\
                   a[0] = s;\n";
        let out = compile_annotated("sumsq", src).expect("compiles annotated");
        let report = braid_check::check_program(
            &out.program,
            &braid_check::CheckConfig::default(),
        );
        assert!(!report.has_errors(), "annotated output must be check-clean:\n{report}");
        assert!(
            out.program.insts.iter().any(|i| !i.braid.start || i.braid.internal),
            "translation should form multi-instruction braids"
        );
    }

    #[test]
    fn compiled_output_matches_the_interpreter() {
        let src = "array a[8] = [5, 4, 3, 2, 1];\n\
                   array out[8];\n\
                   let acc = 7;\n\
                   for i in 0..8 { out[i] = a[i] * 3 + acc; acc = acc + 1; }\n";
        let out = compile("k", src).unwrap();
        let ast = parser::parse(src).unwrap();
        let golden = interp::interp(&ast, 1_000_000).unwrap();

        let mut m = braid_core::Machine::new(&out.program);
        m.run(&out.program, 1_000_000).unwrap();
        for (name, words) in &golden.arrays {
            let base = codegen::ARRAY_BASE
                + golden.arrays.iter().position(|(n, _)| n == name).unwrap() as u64
                    * codegen::ARRAY_STRIDE;
            for (j, w) in words.iter().enumerate() {
                assert_eq!(
                    m.mem.read_u64(base + j as u64 * 8),
                    *w,
                    "{name}[{j}] diverges from the golden model"
                );
            }
        }
    }

    #[test]
    fn parse_errors_become_reports() {
        let err = compile("bad", "let = 1;").unwrap_err();
        assert!(err.has_errors());
        assert!(err.has_code(Code::Bl002Parse));
    }
}
