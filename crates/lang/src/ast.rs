//! The braid-lang abstract syntax tree.

use crate::diag::Span;

/// A binary operator. All arithmetic is on wrapping 64-bit unsigned
/// values; comparisons yield 0 or 1 (matching BRISC's `cmp*` results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping, low 64 bits)
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (shift count taken mod 64)
    Shl,
    /// `>>` (logical; count mod 64)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed, like BRISC `cmplt`)
    Lt,
    /// `<=` (signed, like BRISC `cmple`)
    Le,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int {
        /// The value (sign only matters for the literal form; arithmetic
        /// is on the two's-complement bits).
        value: i64,
        /// Source location.
        span: Span,
    },
    /// Scalar variable reference.
    Var {
        /// The name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// Array element load: `a[idx]`.
    Index {
        /// The array name.
        name: String,
        /// The element index expression.
        index: Box<Expr>,
        /// Source location (covers `a[idx]`).
        span: Span,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location (covers both operands).
        span: Span,
    },
    /// Unary negation (two's complement).
    Neg {
        /// The operand.
        expr: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Var { span, .. }
            | Expr::Index { span, .. }
            | Expr::Bin { span, .. }
            | Expr::Neg { span, .. } => *span,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` — introduces a scalar.
    Let {
        /// The new scalar's name.
        name: String,
        /// Its initializer.
        value: Expr,
        /// Span of the name.
        span: Span,
    },
    /// `name = expr;` — reassigns an existing scalar.
    Assign {
        /// The scalar's name.
        name: String,
        /// The new value.
        value: Expr,
        /// Span of the name.
        span: Span,
    },
    /// `name[idx] = expr;` — stores into an array element.
    Store {
        /// The array's name.
        name: String,
        /// The element index expression.
        index: Expr,
        /// The stored value.
        value: Expr,
        /// Span of the name.
        span: Span,
    },
    /// `for v in lo..hi step s { body }`. Bounds are evaluated once at
    /// entry; the loop runs while `v < hi` (signed), stepping by the
    /// positive literal `step`.
    For {
        /// The induction variable (scoped to the body; read-only inside).
        var: String,
        /// Lower bound (evaluated once).
        lo: Expr,
        /// Upper bound (evaluated once).
        hi: Expr,
        /// Positive literal step (defaults to 1).
        step: i64,
        /// The loop body.
        body: Vec<Stmt>,
        /// Span of the induction variable name.
        span: Span,
    },
}

/// A top-level array declaration:
/// `array name[len];` or `array name[len] = [w0, w1, ...];`
/// (unlisted trailing elements are zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// The array's name.
    pub name: String,
    /// Element count (64-bit words).
    pub len: u32,
    /// Initial words (may be shorter than `len`; the rest are zero).
    pub init: Vec<u64>,
    /// Span of the name.
    pub span: Span,
}

/// A parsed program: array declarations plus a statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ast {
    /// Array declarations, in source order.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements, in source order.
    pub stmts: Vec<Stmt>,
}
