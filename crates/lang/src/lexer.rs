//! The braid-lang lexer: source text → spanned tokens.

use crate::diag::{Code, Diagnostic, Span};

/// One token kind. Keywords are distinguished from identifiers here so the
/// parser never has to string-compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// `let`
    Let,
    /// `array`
    Array,
    /// `for`
    For,
    /// `in`
    In,
    /// `step`
    Step,
    /// An identifier.
    Ident(String),
    /// An integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `..`
    DotDot,
    /// End of input (always the last token).
    Eof,
}

impl Tok {
    /// Short human name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Let => "`let`".into(),
            Tok::Array => "`array`".into(),
            Tok::For => "`for`".into(),
            Tok::In => "`in`".into(),
            Tok::Step => "`step`".into(),
            Tok::Ident(n) => format!("identifier `{n}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Caret => "`^`".into(),
            Tok::Shl => "`<<`".into(),
            Tok::Shr => "`>>`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::NotEq => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Assign => "`=`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub tok: Tok,
    /// Where it is.
    pub span: Span,
}

/// Lexes `source` into tokens (ending with [`Tok::Eof`]). `#` starts a
/// comment running to end of line.
///
/// # Errors
///
/// Returns a `BL001` diagnostic on the first unrecognized character or
/// malformed integer literal.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! span {
        ($start:expr, $len:expr, $scol:expr) => {
            Span::new($start as u32, ($start + $len) as u32, line, $scol)
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                let scol = col;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                    col += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "let" => Tok::Let,
                    "array" => Tok::Array,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "step" => Tok::Step,
                    _ => Tok::Ident(word.to_string()),
                };
                toks.push(Token { tok, span: span!(start, word.len(), scol) });
            }
            b'0'..=b'9' => {
                let start = i;
                let scol = col;
                let hex = i + 1 < bytes.len()
                    && bytes[i] == b'0'
                    && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X');
                if hex {
                    i += 2;
                    col += 2;
                }
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let text = &source[start..i];
                let digits = text.replace('_', "");
                let parsed = if hex {
                    i64::from_str_radix(&digits[2..], 16)
                } else {
                    digits.parse::<i64>()
                };
                match parsed {
                    Ok(v) => {
                        toks.push(Token { tok: Tok::Int(v), span: span!(start, text.len(), scol) })
                    }
                    Err(_) => {
                        return Err(Diagnostic::new(
                            Code::Bl001Lex,
                            span!(start, text.len(), scol),
                            format!("malformed integer literal `{text}`"),
                        ));
                    }
                }
            }
            _ => {
                let start = i;
                let scol = col;
                let two = if i + 1 < bytes.len() { &source[i..i + 2] } else { "" };
                let (tok, len) = match two {
                    "<<" => (Some(Tok::Shl), 2),
                    ">>" => (Some(Tok::Shr), 2),
                    "==" => (Some(Tok::EqEq), 2),
                    "!=" => (Some(Tok::NotEq), 2),
                    "<=" => (Some(Tok::Le), 2),
                    ">=" => (Some(Tok::Ge), 2),
                    ".." => (Some(Tok::DotDot), 2),
                    _ => (
                        match c {
                            b'+' => Some(Tok::Plus),
                            b'-' => Some(Tok::Minus),
                            b'*' => Some(Tok::Star),
                            b'&' => Some(Tok::Amp),
                            b'|' => Some(Tok::Pipe),
                            b'^' => Some(Tok::Caret),
                            b'<' => Some(Tok::Lt),
                            b'>' => Some(Tok::Gt),
                            b'=' => Some(Tok::Assign),
                            b'(' => Some(Tok::LParen),
                            b')' => Some(Tok::RParen),
                            b'[' => Some(Tok::LBracket),
                            b']' => Some(Tok::RBracket),
                            b'{' => Some(Tok::LBrace),
                            b'}' => Some(Tok::RBrace),
                            b',' => Some(Tok::Comma),
                            b';' => Some(Tok::Semi),
                            _ => None,
                        },
                        1,
                    ),
                };
                match tok {
                    Some(t) => {
                        toks.push(Token { tok: t, span: span!(start, len, scol) });
                        i += len;
                        col += len as u32;
                    }
                    None => {
                        return Err(Diagnostic::new(
                            Code::Bl001Lex,
                            span!(start, 1, scol),
                            format!(
                                "unrecognized character `{}`",
                                source[start..].chars().next().unwrap_or('?')
                            ),
                        ));
                    }
                }
            }
        }
    }
    toks.push(Token { tok: Tok::Eof, span: Span::new(bytes.len() as u32, bytes.len() as u32, line, col) });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_token_zoo() {
        let toks = lex("let x = 0x10 + 2; # comment\nfor i in 0..8 step 2 { a[i] = x << 1; }")
            .unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(kinds.contains(&&Tok::Let));
        assert!(kinds.contains(&&Tok::Int(16)));
        assert!(kinds.contains(&&Tok::DotDot));
        assert!(kinds.contains(&&Tok::Step));
        assert!(kinds.contains(&&Tok::Shl));
        assert_eq!(toks.last().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn tracks_lines_and_columns() {
        let toks = lex("let a = 1;\n  let b = 2;").unwrap();
        let b_let = &toks[5];
        assert_eq!(b_let.tok, Tok::Let);
        assert_eq!((b_let.span.line, b_let.span.col), (2, 3));
    }

    #[test]
    fn rejects_bad_chars_and_bad_ints() {
        let err = lex("let $ = 1;").unwrap_err();
        assert_eq!(err.code, Code::Bl001Lex);
        let err = lex("let x = 0xZZ;").unwrap_err();
        assert_eq!(err.code, Code::Bl001Lex);
        let err = lex("let x = 99999999999999999999;").unwrap_err();
        assert_eq!(err.code, Code::Bl001Lex);
    }
}
