//! The parameterized loop-nest workload family.
//!
//! Generates braid-lang source for classic loop-nest shapes with the
//! register-tiling knobs — unroll factor, tile size, nest depth, and
//! independent-chain count — that deliberately vary internal-register
//! pressure and braid-split structure (the "Tiling Perspective for
//! Register Optimization" angle). `braid_workloads::by_name_any` resolves
//! `ln_*` names through [`by_name`], so sweeps, `exp`, the oracle and
//! braidd inherit every compiled program for free.
//!
//! Naming grammar (all parameters are part of the stable name):
//!
//! * `ln_saxpy_u{U}` — `y[i] += a*x[i]`, unrolled `U` ∈ {1,2,4,8}.
//! * `ln_stencil_u{U}` — 3-point stencil, unrolled `U` ∈ {1,2,4,8}.
//! * `ln_matmul_n{N}` — `N`×`N` matmul (depth-3 nest), `N` ∈ {4,8}.
//! * `ln_matmul_n{N}_t{T}` — i/j tiled by `T` (depth-5 nest), `T` | `N`.
//! * `ln_chains_c{C}_u{U}` — `C` ∈ 2..=8 independent multiply-accumulate
//!   chains fed through one shared in-block index value, unrolled `U` ∈
//!   {1,2,4}. All chains hang off a single in-block def, so the canonical
//!   partitioner fuses them into one serialized braid — the
//!   communication-dominated shape the `braidc -O` partition search needs.

use crate::Compiled;

/// One loop-nest family member: a name, its generated source, and a
/// dynamic-instruction budget that comfortably covers the run.
#[derive(Debug, Clone)]
pub struct LoopNest {
    /// Stable workload name (`ln_...`).
    pub name: String,
    /// The braid-lang source text.
    pub source: String,
    /// Instruction budget for functional/timing runs.
    pub fuel: u64,
}

impl LoopNest {
    /// Compiles the member (unannotated, like the hand-written kernels).
    ///
    /// # Panics
    ///
    /// Family sources are compiler-tested; a failure here is a bug.
    pub fn compile(&self) -> Compiled {
        crate::compile(&self.name, &self.source)
            .unwrap_or_else(|r| panic!("loop-nest {} failed to compile:\n{r}", self.name))
    }
}

/// Deterministic array-seeding loop shared by every generator.
fn seed_loop(arr: &str, n: u32, mul: u32, add: u32) -> String {
    format!("for s{arr} in 0..{n} {{ {arr}[s{arr}] = (s{arr} * {mul} + {add}) ^ (s{arr} << 7); }}\n")
}

/// `y[i] = y[i] + a*x[i]` over `n` elements, unrolled by `unroll`.
pub fn saxpy(n: u32, unroll: u32) -> LoopNest {
    assert!(n.is_power_of_two() && n.is_multiple_of(unroll));
    let mut src = format!("# saxpy: n={n} unroll={unroll}\narray x[{n}];\narray y[{n}];\n");
    src.push_str(&seed_loop("x", n, 40503, 9973));
    src.push_str(&seed_loop("y", n, 2057, 271));
    src.push_str("let a = 12289;\n");
    src.push_str(&format!("for i in 0..{n} step {unroll} {{\n"));
    for u in 0..unroll {
        src.push_str(&format!("  y[i + {u}] = y[i + {u}] + a * x[i + {u}];\n"));
    }
    src.push_str("}\n");
    LoopNest { name: format!("ln_saxpy_u{unroll}"), source: src, fuel: 4_000_000 }
}

/// 3-point stencil `out[i] = (x[i-1] + 2*x[i] + x[i+1]) >> 2` over `n`
/// elements (indices wrap modulo `n`), unrolled by `unroll`.
pub fn stencil(n: u32, unroll: u32) -> LoopNest {
    assert!(n.is_power_of_two() && n.is_multiple_of(unroll));
    let mut src = format!("# stencil3: n={n} unroll={unroll}\narray x[{n}];\narray out[{n}];\n");
    src.push_str(&seed_loop("x", n, 31337, 77));
    src.push_str(&format!("for i in 0..{n} step {unroll} {{\n"));
    for u in 0..unroll {
        src.push_str(&format!(
            "  out[i + {u}] = (x[i + {}] + 2 * x[i + {u}] + x[i + {}]) >> 2;\n",
            u as i64 - 1,
            u + 1
        ));
    }
    src.push_str("}\n");
    LoopNest { name: format!("ln_stencil_u{unroll}"), source: src, fuel: 4_000_000 }
}

/// `n`×`n` integer matmul. `tile` of 0 is the plain depth-3 nest; a
/// nonzero `tile` (dividing `n`) tiles the i/j loops (depth-5 nest).
pub fn matmul(n: u32, tile: u32) -> LoopNest {
    assert!(n.is_power_of_two());
    assert!(tile == 0 || (n.is_multiple_of(tile) && tile < n));
    let nn = n * n;
    let mut src = format!(
        "# matmul: n={n} tile={tile}\narray ma[{nn}];\narray mb[{nn}];\narray mc[{nn}];\n"
    );
    src.push_str(&seed_loop("ma", nn, 48271, 11));
    src.push_str(&seed_loop("mb", nn, 16807, 7));
    let body = |src: &mut String, ipad: &str| {
        src.push_str(&format!("{ipad}let acc = 0;\n"));
        src.push_str(&format!(
            "{ipad}for k in 0..{n} {{ acc = acc + ma[i * {n} + k] * mb[k * {n} + j]; }}\n"
        ));
        src.push_str(&format!("{ipad}mc[i * {n} + j] = acc;\n"));
    };
    if tile == 0 {
        src.push_str(&format!("for i in 0..{n} {{\n for j in 0..{n} {{\n"));
        body(&mut src, "  ");
        src.push_str(" }\n}\n");
    } else {
        src.push_str(&format!(
            "for ii in 0..{n} step {tile} {{\n for jj in 0..{n} step {tile} {{\n"
        ));
        src.push_str(&format!(
            "  for i in ii..ii + {tile} {{\n   for j in jj..jj + {tile} {{\n"
        ));
        body(&mut src, "    ");
        src.push_str("   }\n  }\n }\n}\n");
    }
    let name = if tile == 0 {
        format!("ln_matmul_n{n}")
    } else {
        format!("ln_matmul_n{n}_t{tile}")
    };
    LoopNest { name, source: src, fuel: 8_000_000 }
}

/// `chains` independent multiply-accumulate chains, all indexed off one
/// shared in-block value (`let b = i + 0;`), unrolled by `unroll`. The
/// shared def makes the whole body one connected dataflow subgraph, so
/// the canonical partitioner serializes all chains into a single braid —
/// length-limited cuts can beat it by spreading the chains across BEUs.
pub fn chains(n: u32, nchains: u32, unroll: u32) -> LoopNest {
    assert!(n.is_power_of_two());
    assert!((2..=8).contains(&nchains));
    let step = nchains * unroll;
    let primes = [3, 5, 7, 11, 13, 17, 19, 23];
    let mut src = format!("# chains: n={n} c={nchains} unroll={unroll}\narray x[{n}];\narray out[16];\n");
    src.push_str(&seed_loop("x", n, 28657, 433));
    for c in 0..nchains {
        src.push_str(&format!("let t{c} = {};\n", c + 1));
    }
    src.push_str(&format!("for i in 0..{n} step {step} {{\n  let b = i + 0;\n"));
    for u in 0..unroll {
        for c in 0..nchains {
            src.push_str(&format!(
                "  t{c} = t{c} + x[b + {}] * {};\n",
                u * nchains + c,
                primes[c as usize]
            ));
        }
    }
    src.push_str("}\n");
    for c in 0..nchains {
        src.push_str(&format!("out[{c}] = t{c};\n"));
    }
    LoopNest { name: format!("ln_chains_c{nchains}_u{unroll}"), source: src, fuel: 4_000_000 }
}

/// The curated family registered as workloads (`braid_workloads`
/// resolves these names, so they flow into sweeps, `exp`, the oracle and
/// braidd for free).
pub fn family() -> Vec<LoopNest> {
    vec![
        saxpy(1024, 1),
        saxpy(1024, 4),
        stencil(1024, 1),
        stencil(1024, 4),
        matmul(8, 0),
        matmul(8, 4),
        chains(2048, 4, 2),
        chains(2048, 6, 2),
    ]
}

/// The communication-dominated subset fed into the `braidc -O` partition
/// search (`exp opt`): canonical braid formation serializes these, so
/// alternative cuts have headroom to recover.
pub fn opt_family() -> Vec<LoopNest> {
    vec![chains(2048, 4, 2), chains(2048, 6, 2), chains(2048, 6, 4), chains(2048, 8, 2)]
}

/// Resolves a loop-nest family name (`ln_...`), parsing the parameter
/// suffix — any in-range parameterization works, not just the curated
/// [`family`] list.
pub fn by_name(name: &str) -> Option<LoopNest> {
    let rest = name.strip_prefix("ln_")?;
    if let Some(u) = rest.strip_prefix("saxpy_u") {
        let u: u32 = u.parse().ok()?;
        if [1, 2, 4, 8].contains(&u) {
            return Some(saxpy(1024, u));
        }
    } else if let Some(u) = rest.strip_prefix("stencil_u") {
        let u: u32 = u.parse().ok()?;
        if [1, 2, 4, 8].contains(&u) {
            return Some(stencil(1024, u));
        }
    } else if let Some(params) = rest.strip_prefix("matmul_n") {
        let (n, t) = match params.split_once("_t") {
            Some((n, t)) => (n.parse().ok()?, t.parse().ok()?),
            None => (params.parse().ok()?, 0u32),
        };
        if [4u32, 8].contains(&n) && (t == 0 || (t < n && n % t == 0)) {
            return Some(matmul(n, t));
        }
    } else if let Some(params) = rest.strip_prefix("chains_c") {
        let (c, u) = params.split_once("_u")?;
        let (c, u): (u32, u32) = (c.parse().ok()?, u.parse().ok()?);
        if (2..=8).contains(&c) && [1, 2, 4].contains(&u) {
            return Some(chains(2048, c, u));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_member_compiles_clean_and_annotates() {
        for nest in family() {
            let out = crate::compile(&nest.name, &nest.source)
                .unwrap_or_else(|r| panic!("{}:\n{r}", nest.name));
            assert!(out.report.is_clean(), "{}: {}", nest.name, out.report);
            out.program.validate().unwrap();
            let ann = crate::compile_annotated(&nest.name, &nest.source)
                .unwrap_or_else(|r| panic!("{} annotated:\n{r}", nest.name));
            let check = braid_check::check_program(
                &ann.program,
                &braid_check::CheckConfig::default(),
            );
            assert!(!check.has_errors(), "{}:\n{check}", nest.name);
        }
    }

    #[test]
    fn family_members_terminate_within_fuel() {
        for nest in family() {
            let out = nest.compile();
            let mut m = braid_core::Machine::new(&out.program);
            let trace = m
                .run(&out.program, nest.fuel)
                .unwrap_or_else(|e| panic!("{}: {e}", nest.name));
            assert!(m.halted(), "{} must halt", nest.name);
            assert!(
                trace.entries.len() > 1000,
                "{} should be a real workload, got {} insts",
                nest.name,
                trace.entries.len()
            );
        }
    }

    #[test]
    fn by_name_parses_the_grammar() {
        for nest in family().into_iter().chain(opt_family()) {
            let again = by_name(&nest.name).unwrap_or_else(|| panic!("{}", nest.name));
            assert_eq!(again.source, nest.source, "{} must be reproducible", nest.name);
        }
        assert!(by_name("ln_chains_c9_u2").is_none());
        assert!(by_name("ln_saxpy_u3").is_none());
        assert!(by_name("dot_product").is_none());
        assert!(by_name("ln_matmul_n8_t8").is_none());
    }
}
