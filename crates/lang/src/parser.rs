//! Recursive-descent parser: tokens → [`Ast`], with spanned `BL002`
//! diagnostics on the first syntax error.

use crate::ast::{ArrayDecl, Ast, BinOp, Expr, Stmt};
use crate::diag::{Code, Diagnostic, Span};
use crate::lexer::{lex, Tok, Token};

/// Largest declarable array, in 64-bit words (one data segment).
pub const MAX_ARRAY_WORDS: u32 = 1 << 16;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok, what: &str) -> Result<Token, Diagnostic> {
        let t = self.peek().clone();
        if std::mem::discriminant(&t.tok) == std::mem::discriminant(want) {
            Ok(self.next())
        } else {
            Err(Diagnostic::new(
                Code::Bl002Parse,
                t.span,
                format!("expected {what}, found {}", t.tok.describe()),
            ))
        }
    }

    fn eat_ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        let t = self.eat(&Tok::Ident(String::new()), what)?;
        match t.tok {
            Tok::Ident(name) => Ok((name, t.span)),
            _ => unreachable!("eat matched Ident"),
        }
    }

    fn eat_int(&mut self, what: &str) -> Result<(i64, Span), Diagnostic> {
        // A literal integer, allowing a leading minus.
        if self.peek().tok == Tok::Minus {
            let minus = self.next();
            let t = self.eat(&Tok::Int(0), what)?;
            match t.tok {
                Tok::Int(v) => Ok((v.wrapping_neg(), minus.span.to(t.span))),
                _ => unreachable!(),
            }
        } else {
            let t = self.eat(&Tok::Int(0), what)?;
            match t.tok {
                Tok::Int(v) => Ok((v, t.span)),
                _ => unreachable!(),
            }
        }
    }

    fn program(&mut self) -> Result<Ast, Diagnostic> {
        let mut ast = Ast::default();
        while self.peek().tok != Tok::Eof {
            if self.peek().tok == Tok::Array {
                ast.arrays.push(self.array_decl()?);
            } else {
                ast.stmts.push(self.stmt()?);
            }
        }
        Ok(ast)
    }

    fn array_decl(&mut self) -> Result<ArrayDecl, Diagnostic> {
        self.eat(&Tok::Array, "`array`")?;
        let (name, span) = self.eat_ident("array name")?;
        self.eat(&Tok::LBracket, "`[`")?;
        let (len, len_span) = self.eat_int("array length")?;
        if len <= 0 || len > MAX_ARRAY_WORDS as i64 {
            return Err(Diagnostic::new(
                Code::Bl007Capacity,
                len_span,
                format!("array length must be 1..={MAX_ARRAY_WORDS}, got {len}"),
            ));
        }
        // Indices are reduced modulo the length (one `andi` mask), which
        // only works — and keeps the golden model and the compiled code
        // bit-identical on any index — when lengths are powers of two.
        if len & (len - 1) != 0 {
            return Err(Diagnostic::new(
                Code::Bl007Capacity,
                len_span,
                format!("array length must be a power of two, got {len}"),
            ));
        }
        self.eat(&Tok::RBracket, "`]`")?;
        let mut init = Vec::new();
        if self.peek().tok == Tok::Assign {
            self.next();
            self.eat(&Tok::LBracket, "`[`")?;
            loop {
                let (w, w_span) = self.eat_int("array initializer element")?;
                if init.len() as i64 >= len {
                    return Err(Diagnostic::new(
                        Code::Bl007Capacity,
                        w_span,
                        format!("initializer has more than {len} elements"),
                    ));
                }
                init.push(w as u64);
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
            self.eat(&Tok::RBracket, "`]`")?;
        }
        self.eat(&Tok::Semi, "`;`")?;
        Ok(ArrayDecl { name, len: len as u32, init, span })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Let => {
                self.next();
                let (name, span) = self.eat_ident("variable name")?;
                self.eat(&Tok::Assign, "`=`")?;
                let value = self.expr()?;
                self.eat(&Tok::Semi, "`;`")?;
                Ok(Stmt::Let { name, value, span })
            }
            Tok::For => {
                self.next();
                let (var, span) = self.eat_ident("loop variable")?;
                self.eat(&Tok::In, "`in`")?;
                let lo = self.expr()?;
                self.eat(&Tok::DotDot, "`..`")?;
                let hi = self.expr()?;
                let step = if self.peek().tok == Tok::Step {
                    self.next();
                    let (s, s_span) = self.eat_int("literal step")?;
                    if s <= 0 {
                        return Err(Diagnostic::new(
                            Code::Bl006Loop,
                            s_span,
                            format!("loop step must be a positive literal, got {s}"),
                        ));
                    }
                    s
                } else {
                    1
                };
                self.eat(&Tok::LBrace, "`{`")?;
                let mut body = Vec::new();
                while self.peek().tok != Tok::RBrace {
                    if self.peek().tok == Tok::Eof {
                        return Err(Diagnostic::new(
                            Code::Bl002Parse,
                            self.peek().span,
                            "unterminated loop body (missing `}`)",
                        ));
                    }
                    if self.peek().tok == Tok::Array {
                        return Err(Diagnostic::new(
                            Code::Bl002Parse,
                            self.peek().span,
                            "array declarations must be top-level",
                        ));
                    }
                    body.push(self.stmt()?);
                }
                self.eat(&Tok::RBrace, "`}`")?;
                Ok(Stmt::For { var, lo, hi, step, body, span })
            }
            Tok::Ident(_) => {
                let (name, span) = self.eat_ident("variable name")?;
                if self.peek().tok == Tok::LBracket {
                    self.next();
                    let index = self.expr()?;
                    self.eat(&Tok::RBracket, "`]`")?;
                    self.eat(&Tok::Assign, "`=`")?;
                    let value = self.expr()?;
                    self.eat(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Store { name, index, value, span })
                } else {
                    self.eat(&Tok::Assign, "`=`")?;
                    let value = self.expr()?;
                    self.eat(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Assign { name, value, span })
                }
            }
            _ => Err(Diagnostic::new(
                Code::Bl002Parse,
                t.span,
                format!("expected a statement, found {}", t.tok.describe()),
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt | Tok::Ge => Some(BinOp::Lt), // swapped below
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        let swapped = matches!(self.peek().tok, Tok::Gt | Tok::Ge);
        let ge = self.peek().tok == Tok::Ge;
        self.next();
        let rhs = self.add_expr()?;
        let span = lhs.span().to(rhs.span());
        // `a > b` is `b < a`; `a >= b` is `b <= a`.
        let (op, lhs, rhs) = if swapped {
            (if ge { BinOp::Le } else { BinOp::Lt }, rhs, lhs)
        } else {
            (op, lhs, rhs)
        };
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span })
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Pipe => BinOp::Or,
                Tok::Caret => BinOp::Xor,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Amp => BinOp::And,
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => break,
            };
            self.next();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        if self.peek().tok == Tok::Minus {
            let minus = self.next();
            let inner = self.unary_expr()?;
            let span = minus.span.to(inner.span());
            return Ok(Expr::Neg { expr: Box::new(inner), span });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Int(value) => {
                self.next();
                Ok(Expr::Int { value, span: t.span })
            }
            Tok::Ident(name) => {
                self.next();
                if self.peek().tok == Tok::LBracket {
                    self.next();
                    let index = self.expr()?;
                    let close = self.eat(&Tok::RBracket, "`]`")?;
                    Ok(Expr::Index {
                        name,
                        index: Box::new(index),
                        span: t.span.to(close.span),
                    })
                } else {
                    Ok(Expr::Var { name, span: t.span })
                }
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.eat(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => Err(Diagnostic::new(
                Code::Bl002Parse,
                t.span,
                format!("expected an expression, found {}", t.tok.describe()),
            )),
        }
    }
}

/// Parses `source` into an [`Ast`].
///
/// # Errors
///
/// Returns the first `BL001` (lex) or `BL002` (parse) diagnostic.
pub fn parse(source: &str) -> Result<Ast, Diagnostic> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_loop_nest() {
        let ast = parse(
            "array a[8] = [1, 2, 3];\nlet s = 0;\nfor i in 0..8 step 2 { s = s + a[i]; }\n",
        )
        .unwrap();
        assert_eq!(ast.arrays.len(), 1);
        assert_eq!(ast.arrays[0].len, 8);
        assert_eq!(ast.arrays[0].init, vec![1, 2, 3]);
        assert_eq!(ast.stmts.len(), 2);
        match &ast.stmts[1] {
            Stmt::For { var, step, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(*step, 2);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn gt_is_swapped_lt() {
        let ast = parse("let x = 3 > 2;").unwrap();
        match &ast.stmts[0] {
            Stmt::Let { value: Expr::Bin { op, lhs, .. }, .. } => {
                assert_eq!(*op, BinOp::Lt);
                assert_eq!(**lhs, Expr::Int { value: 2, span: lhs.span() });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let ast = parse("let x = 1 + 2 * 3;").unwrap();
        match &ast.stmts[0] {
            Stmt::Let { value: Expr::Bin { op: BinOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_spans() {
        let err = parse("let = 3;").unwrap_err();
        assert_eq!(err.code, Code::Bl002Parse);
        assert_eq!((err.span.line, err.span.col), (1, 5));
        let err = parse("for i in 0..4 step 0 { }").unwrap_err();
        assert_eq!(err.code, Code::Bl006Loop);
        let err = parse("for i in 0..4 { array a[2]; }").unwrap_err();
        assert_eq!(err.code, Code::Bl002Parse);
        let err = parse("array a[0];").unwrap_err();
        assert_eq!(err.code, Code::Bl007Capacity);
        let err = parse("array a[3];").unwrap_err();
        assert_eq!(err.code, Code::Bl007Capacity);
    }
}
