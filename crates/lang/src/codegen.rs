//! Code generation: [`Ast`] → BRISC [`Program`].
//!
//! # Register convention
//!
//! * `r1..r15` — named scalars, loop induction variables, and one hidden
//!   loop-bound register per active loop (bounds are evaluated once at
//!   entry, per the language's affine-bound rule).
//! * `r16..r31` — expression temporaries, stack-allocated per statement.
//!
//! Exceeding either pool is a `BL007` diagnostic, so every accepted
//! program fits the architectural register file with no spilling.
//!
//! # Arrays
//!
//! Each array is one zero-padded [`DataSegment`] at
//! `0x10_0000 + k * 0x8_0000` tagged `AliasClass::Global(k)` on every
//! access, so the translator's memory-reordering legality check can
//! disambiguate distinct arrays. Indices are masked with `andi len-1`
//! (lengths are powers of two), making out-of-bounds access impossible by
//! construction — the same reduction the reference interpreter applies.
//!
//! # Annotation
//!
//! The generator emits *unannotated* instructions (every constructor
//! defaults to `S=1`, `E=has_dest`, which is structurally valid), exactly
//! like the hand-written kernels: single-instruction braids with all
//! values external. [`crate::compile_annotated`] then runs the existing
//! braid translator over the output, so annotated containers are
//! check-clean by construction rather than by a parallel annotation
//! implementation.

use std::collections::BTreeMap;

use braid_isa::{AliasClass, DataSegment, Inst, Opcode, Program, Reg};

use crate::ast::{Ast, BinOp, Expr, Stmt};
use crate::diag::{Code, Diagnostic, LangReport, Span};

/// First scalar register number.
const SCALAR_LO: u8 = 1;
/// Last scalar register number (inclusive).
const SCALAR_HI: u8 = 15;
/// First temporary register number.
const TEMP_LO: u8 = 16;
/// Last temporary register number (inclusive).
const TEMP_HI: u8 = 31;
/// Base address of array 0's data segment.
pub const ARRAY_BASE: u64 = 0x10_0000;
/// Address stride between consecutive arrays' segments.
pub const ARRAY_STRIDE: u64 = 0x8_0000;
/// Maximum number of array declarations.
pub const MAX_ARRAYS: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Scalar(Reg),
    Array(usize),
}

#[derive(Debug)]
struct Binding {
    name: String,
    kind: Kind,
    span: Span,
    used: bool,
    is_loop_var: bool,
}

#[derive(Debug)]
struct ArrayInfo {
    len: u32,
    base: u64,
    used: bool,
}

struct Gen {
    insts: Vec<Inst>,
    report: LangReport,
    scopes: Vec<Vec<Binding>>,
    free_scalars: Vec<u8>,
    temp_next: u8,
    arrays: Vec<ArrayInfo>,
    labels: BTreeMap<String, u32>,
    loops: u32,
}

impl Gen {
    fn diag(&mut self, d: Diagnostic) {
        self.report.push(d);
    }

    /// Appends a constructed instruction. Constructor failures are turned
    /// into `BL009` diagnostics rather than panics: the generator only
    /// builds valid shapes, so a failure can only follow an earlier
    /// capacity/semantic error that degraded a register to `r0`.
    fn push(&mut self, inst: Result<Inst, braid_isa::IsaError>) {
        match inst {
            Ok(i) => self.insts.push(i),
            Err(e) => self.diag(Diagnostic::new(
                Code::Bl009Internal,
                Span::default(),
                format!("instruction construction failed: {e}"),
            )),
        }
    }

    fn find(&mut self, name: &str) -> Option<(Kind, bool)> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.iter_mut().rev().find(|b| b.name == name) {
                return Some((b.kind, b.is_loop_var));
            }
        }
        None
    }

    fn mark_used(&mut self, name: &str) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.iter_mut().rev().find(|b| b.name == name) {
                b.used = true;
                return;
            }
        }
    }

    fn defined_span(&self, name: &str) -> Option<Span> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|b| b.name == name))
            .map(|b| b.span)
    }

    fn declare_scalar(&mut self, name: &str, span: Span, is_loop_var: bool) -> Reg {
        if let Some(def) = self.defined_span(name) {
            self.diag(
                Diagnostic::new(
                    Code::Bl004Duplicate,
                    span,
                    format!("`{name}` is already defined (shadowing is not allowed)"),
                )
                .with_def_span(def),
            );
        }
        let reg = match self.free_scalars.pop() {
            Some(n) => Reg::int(n).expect("pool registers are < 32"),
            None => {
                self.diag(Diagnostic::new(
                    Code::Bl007Capacity,
                    span,
                    format!(
                        "too many live scalars: the register plan allows {} (r{SCALAR_LO}..r{SCALAR_HI})",
                        SCALAR_HI - SCALAR_LO + 1
                    ),
                ));
                Reg::ZERO
            }
        };
        self.scopes.last_mut().expect("scope stack").push(Binding {
            name: name.to_string(),
            kind: Kind::Scalar(reg),
            span,
            used: false,
            is_loop_var,
        });
        reg
    }

    fn alloc_temp(&mut self, span: Span) -> Reg {
        if self.temp_next > TEMP_HI {
            self.diag(Diagnostic::new(
                Code::Bl007Capacity,
                span,
                format!(
                    "expression too deep: the temporary pool allows {} registers (r{TEMP_LO}..r{TEMP_HI})",
                    TEMP_HI - TEMP_LO + 1
                ),
            ));
            return Reg::ZERO;
        }
        let r = Reg::int(self.temp_next).expect("pool registers are < 32");
        self.temp_next += 1;
        r
    }

    /// Evaluates `e` for use as an operand: plain variables yield their
    /// home register directly (no move, no temporary); anything else goes
    /// through a fresh temporary.
    fn eval_operand(&mut self, e: &Expr) -> Reg {
        if let Expr::Var { name, span } = e {
            match self.find(name) {
                Some((Kind::Scalar(r), _)) => {
                    self.mark_used(name);
                    return r;
                }
                Some((Kind::Array(_), _)) => {
                    self.diag(Diagnostic::new(
                        Code::Bl005Kind,
                        *span,
                        format!("`{name}` is an array; index it with `{name}[...]`"),
                    ));
                    return Reg::ZERO;
                }
                None => {
                    self.diag(Diagnostic::new(
                        Code::Bl003Unknown,
                        *span,
                        format!("unknown name `{name}`"),
                    ));
                    return Reg::ZERO;
                }
            }
        }
        let t = self.alloc_temp(e.span());
        self.eval(e, t);
        t
    }

    /// Emits code computing `e` into `dest`.
    fn eval(&mut self, e: &Expr, dest: Reg) {
        let saved_temp = self.temp_next;
        self.eval_inner(e, dest);
        self.temp_next = saved_temp;
    }

    fn eval_inner(&mut self, e: &Expr, dest: Reg) {
        match e {
            Expr::Int { value, span } => {
                match i32::try_from(*value) {
                    Ok(v) => self.push(Inst::alui(Opcode::Addi, Reg::ZERO, v, dest)),
                    Err(_) => self.diag(Diagnostic::new(
                        Code::Bl007Capacity,
                        *span,
                        format!("literal {value} does not fit the 32-bit immediate field"),
                    )),
                }
            }
            Expr::Var { .. } => {
                let r = self.eval_operand(e);
                self.push(Inst::alu(Opcode::Or, r, Reg::ZERO, dest));
            }
            Expr::Index { name, index, span } => {
                let addr = self.array_addr(name, index, *span);
                self.push(Inst::load(
                    Opcode::Ldq,
                    addr.0,
                    0,
                    dest,
                    addr.1,
                ));
            }
            Expr::Neg { expr, .. } => {
                let r = self.eval_operand(expr);
                self.push(Inst::alu(Opcode::Sub, Reg::ZERO, r, dest));
            }
            Expr::Bin { op, lhs, rhs, .. } => self.eval_bin(*op, lhs, rhs, dest),
        }
    }

    /// Computes the element address for `name[index]` into a temporary,
    /// returning it with the array's alias class. Emits
    /// `andi/slli/addi` (mask, scale, base).
    fn array_addr(&mut self, name: &str, index: &Expr, span: Span) -> (Reg, AliasClass) {
        let (len, base, k) = match self.find(name) {
            Some((Kind::Array(k), _)) => {
                self.mark_used(name);
                self.arrays[k].used = true;
                (self.arrays[k].len, self.arrays[k].base, k)
            }
            Some((Kind::Scalar(_), _)) => {
                self.diag(Diagnostic::new(
                    Code::Bl005Kind,
                    span,
                    format!("`{name}` is a scalar and cannot be indexed"),
                ));
                (1, ARRAY_BASE, 0)
            }
            None => {
                self.diag(Diagnostic::new(
                    Code::Bl003Unknown,
                    span,
                    format!("unknown array `{name}`"),
                ));
                (1, ARRAY_BASE, 0)
            }
        };
        let idx = self.eval_operand(index);
        let t = self.alloc_temp(span);
        self.push(Inst::alui(Opcode::Andi, idx, (len - 1) as i32, t));
        self.push(Inst::alui(Opcode::Slli, t, 3, t));
        self.push(Inst::alui(Opcode::Addi, t, base as i32, t));
        (t, AliasClass::Global(k as u16))
    }

    fn eval_bin(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, dest: Reg) {
        // Immediate forms. `a OP literal` (or `literal OP a` for
        // commutative operators) saves the materializing `addi`.
        let (lhs, rhs) = if matches!(lhs, Expr::Int { .. })
            && !matches!(rhs, Expr::Int { .. })
            && matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne)
        {
            (rhs, lhs)
        } else {
            (lhs, rhs)
        };
        if let Expr::Int { value, .. } = rhs {
            if let Ok(imm) = i32::try_from(*value) {
                let imm_op = match op {
                    BinOp::Add => Some(Opcode::Addi),
                    BinOp::Sub => Some(Opcode::Subi),
                    BinOp::Mul => Some(Opcode::Muli),
                    BinOp::And => Some(Opcode::Andi),
                    BinOp::Or => Some(Opcode::Ori),
                    BinOp::Xor => Some(Opcode::Xori),
                    BinOp::Shl => Some(Opcode::Slli),
                    BinOp::Shr => Some(Opcode::Srli),
                    BinOp::Eq => Some(Opcode::Cmpeqi),
                    BinOp::Lt => Some(Opcode::Cmplti),
                    BinOp::Ne | BinOp::Le => None,
                };
                if let Some(o) = imm_op {
                    let a = self.eval_operand(lhs);
                    // Shift immediates reach the machine modulo 64 either
                    // way, but keep the encoding canonical.
                    let imm = match o {
                        Opcode::Slli | Opcode::Srli => imm & 63,
                        _ => imm,
                    };
                    self.push(Inst::alui(o, a, imm, dest));
                    return;
                }
                if op == BinOp::Ne {
                    let a = self.eval_operand(lhs);
                    self.push(Inst::alui(Opcode::Cmpeqi, a, imm, dest));
                    self.push(Inst::alui(Opcode::Xori, dest, 1, dest));
                    return;
                }
            }
        }
        let a = self.eval_operand(lhs);
        let b = self.eval_operand(rhs);
        let alu = |o| Inst::alu(o, a, b, dest);
        match op {
            BinOp::Add => self.push(alu(Opcode::Add)),
            BinOp::Sub => self.push(alu(Opcode::Sub)),
            BinOp::Mul => self.push(alu(Opcode::Mul)),
            BinOp::And => self.push(alu(Opcode::And)),
            BinOp::Or => self.push(alu(Opcode::Or)),
            BinOp::Xor => self.push(alu(Opcode::Xor)),
            BinOp::Shl => self.push(alu(Opcode::Sll)),
            BinOp::Shr => self.push(alu(Opcode::Srl)),
            BinOp::Eq => self.push(alu(Opcode::Cmpeq)),
            BinOp::Lt => self.push(alu(Opcode::Cmplt)),
            BinOp::Le => self.push(alu(Opcode::Cmple)),
            BinOp::Ne => {
                self.push(alu(Opcode::Cmpeq));
                self.push(Inst::alui(Opcode::Xori, dest, 1, dest));
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { name, value, span } => {
                let reg = self.declare_scalar(name, *span, false);
                self.eval(value, reg);
            }
            Stmt::Assign { name, value, span } => match self.find(name) {
                Some((Kind::Scalar(r), is_loop_var)) => {
                    if is_loop_var {
                        self.diag(Diagnostic::new(
                            Code::Bl005Kind,
                            *span,
                            format!("cannot assign to loop variable `{name}`"),
                        ));
                        return;
                    }
                    self.eval(value, r);
                }
                Some((Kind::Array(_), _)) => self.diag(Diagnostic::new(
                    Code::Bl005Kind,
                    *span,
                    format!("`{name}` is an array; assign to an element with `{name}[...] = ...`"),
                )),
                None => self.diag(Diagnostic::new(
                    Code::Bl003Unknown,
                    *span,
                    format!("unknown name `{name}`"),
                )),
            },
            Stmt::Store { name, index, value, span } => {
                let saved_temp = self.temp_next;
                let (addr, alias) = self.array_addr(name, index, *span);
                let v = self.eval_operand(value);
                self.push(Inst::store(Opcode::Stq, v, addr, 0, alias));
                self.temp_next = saved_temp;
            }
            Stmt::For { var, lo, hi, step, body, span } => {
                self.scopes.push(Vec::new());
                let var_reg = self.declare_scalar(var, *span, true);
                // The upper bound is evaluated once at entry into a hidden
                // scalar that stays live for the whole loop.
                let hi_reg = match self.free_scalars.pop() {
                    Some(n) => Reg::int(n).expect("pool registers are < 32"),
                    None => {
                        self.diag(Diagnostic::new(
                            Code::Bl007Capacity,
                            *span,
                            "no scalar register left for the loop bound".to_string(),
                        ));
                        Reg::ZERO
                    }
                };
                self.eval(lo, var_reg);
                self.eval(hi, hi_reg);
                let loop_id = self.loops;
                self.loops += 1;
                let head = self.insts.len() as u32;
                self.labels.insert(format!("L{loop_id}_head"), head);
                let saved_temp = self.temp_next;
                let cond = self.alloc_temp(*span);
                self.push(Inst::alu(Opcode::Cmplt, var_reg, hi_reg, cond));
                let exit_branch = self.insts.len();
                self.push(Inst::branch(Opcode::Beq, cond, 0));
                self.temp_next = saved_temp;
                for s in body {
                    self.stmt(s);
                }
                self.push(Inst::alui(Opcode::Addi, var_reg, *step as i32, var_reg));
                self.insts.push(Inst::br(head));
                let exit = self.insts.len() as u32;
                self.labels.insert(format!("L{loop_id}_exit"), exit);
                // Patch the exit branch (guarded: on an earlier capacity
                // error the branch may not have been emitted at all).
                if let Some(b) = self.insts.get_mut(exit_branch) {
                    if b.opcode == Opcode::Beq {
                        b.imm = exit as i32;
                    }
                }
                // Close the loop scope, returning its registers (the
                // induction variable and the hidden bound) to the pool.
                let scope = self.scopes.pop().expect("loop scope");
                for b in &scope {
                    self.warn_unused(b);
                    if let Kind::Scalar(r) = b.kind {
                        if !r.is_zero() {
                            self.free_scalars.push(r.class_index());
                        }
                    }
                }
                if !hi_reg.is_zero() {
                    self.free_scalars.push(hi_reg.class_index());
                }
            }
        }
    }

    fn warn_unused(&mut self, b: &Binding) {
        if !b.used && !b.is_loop_var {
            self.report.push(Diagnostic::new(
                Code::Bl008Unused,
                b.span,
                format!("`{}` is never read", b.name),
            ));
        }
    }
}

/// Generates an (unannotated) BRISC program from `ast`.
///
/// # Errors
///
/// Returns the report when any `BL0xx` error was found; the report may
/// also carry `BL008` warnings alongside a successful program.
pub fn codegen(name: &str, ast: &Ast) -> Result<(Program, LangReport), LangReport> {
    let mut g = Gen {
        insts: Vec::new(),
        report: LangReport::new(name),
        scopes: vec![Vec::new()],
        free_scalars: (SCALAR_LO..=SCALAR_HI).rev().collect(),
        temp_next: TEMP_LO,
        arrays: Vec::new(),
        labels: BTreeMap::new(),
        loops: 0,
    };
    // Declare arrays first (they are top-level and order-significant for
    // base assignment), then walk the statements.
    let mut data = Vec::new();
    for (k, d) in ast.arrays.iter().enumerate() {
        if k >= MAX_ARRAYS {
            g.diag(Diagnostic::new(
                Code::Bl007Capacity,
                d.span,
                format!("too many arrays: at most {MAX_ARRAYS} are supported"),
            ));
            break;
        }
        if let Some(def) = g.defined_span(&d.name) {
            g.diag(
                Diagnostic::new(
                    Code::Bl004Duplicate,
                    d.span,
                    format!("`{}` is already defined", d.name),
                )
                .with_def_span(def),
            );
            continue;
        }
        let base = ARRAY_BASE + k as u64 * ARRAY_STRIDE;
        let mut words = vec![0u64; d.len as usize];
        words[..d.init.len()].copy_from_slice(&d.init);
        data.push(DataSegment::from_words(base, &words));
        g.arrays.push(ArrayInfo { len: d.len, base, used: false });
        g.scopes[0].push(Binding {
            name: d.name.clone(),
            kind: Kind::Array(k),
            span: d.span,
            used: false,
            is_loop_var: false,
        });
    }
    for s in &ast.stmts {
        g.stmt(s);
    }
    g.insts.push(Inst::halt());
    let top = std::mem::take(&mut g.scopes[0]);
    for b in &top {
        g.warn_unused(b);
    }
    if g.report.has_errors() {
        return Err(g.report);
    }
    let program = Program {
        name: name.to_string(),
        insts: g.insts,
        entry: 0,
        data,
        labels: g.labels,
    };
    if let Err(e) = program.validate() {
        let mut report = g.report;
        report.push(Diagnostic::new(
            Code::Bl009Internal,
            Span::default(),
            format!("generated program failed ISA validation: {e}"),
        ));
        return Err(report);
    }
    Ok((program, g.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn gen(src: &str) -> (Program, LangReport) {
        codegen("t", &parse(src).unwrap()).unwrap()
    }

    fn gen_err(src: &str) -> LangReport {
        codegen("t", &parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn straight_line_compiles_and_validates() {
        let (p, r) = gen("let x = 1 + 2 * 3;\nlet y = x << 2;\nlet z = y;\nlet w = z;\n");
        assert!(r.warnings() > 0, "w is unused");
        assert!(p.insts.len() >= 5);
        assert_eq!(p.insts.last().unwrap().opcode, Opcode::Halt);
    }

    #[test]
    fn loops_get_labels_and_backedges() {
        let (p, _) = gen("array a[8];\nfor i in 0..8 { a[i] = i; }\n");
        assert!(p.labels.contains_key("L0_head"));
        assert!(p.labels.contains_key("L0_exit"));
        assert!(p.insts.iter().any(|i| i.opcode == Opcode::Br));
        assert!(p.insts.iter().any(|i| i.opcode == Opcode::Beq));
        assert!(p.insts.iter().any(|i| i.opcode == Opcode::Stq));
    }

    #[test]
    fn semantic_errors_have_codes() {
        assert!(gen_err("let x = y;\n").has_code(Code::Bl003Unknown));
        assert!(gen_err("let x = 1;\nlet x = 2;\n").has_code(Code::Bl004Duplicate));
        assert!(gen_err("array a[4];\nlet x = a;\n").has_code(Code::Bl005Kind));
        assert!(gen_err("let x = 1;\nlet y = x[0];\n").has_code(Code::Bl005Kind));
        assert!(gen_err("for i in 0..4 { i = 2; }\n").has_code(Code::Bl005Kind));
        assert!(gen_err("let x = 9999999999999;\n").has_code(Code::Bl007Capacity));
    }

    #[test]
    fn scalar_pool_exhaustion_is_bl007() {
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!("let v{i} = {i};\nlet u{i} = v{i};\n"));
        }
        assert!(gen_err(&src).has_code(Code::Bl007Capacity));
    }

    #[test]
    fn loop_registers_are_recycled() {
        // 12 sequential loops would exhaust a 15-register pool if the
        // induction/bound registers leaked.
        let mut src = String::from("array a[8];\n");
        for l in 0..12 {
            src.push_str(&format!("for i{l} in 0..4 {{ a[i{l}] = i{l}; }}\n"));
        }
        let (p, r) = codegen("t", &parse(&src).unwrap()).unwrap();
        assert!(r.is_clean());
        p.validate().unwrap();
    }
}
