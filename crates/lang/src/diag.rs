//! Source-level diagnostics: stable `BL0xx` codes, byte/line/column spans,
//! and the human-readable / JSON renderers.
//!
//! The shape deliberately mirrors `braid_check::diag` (stable codes that
//! are never renumbered, fixed per-code severities, a builder-style
//! [`Diagnostic`], a report with `errors()`/`warnings()`/`to_json()`), so
//! tooling that already consumes `BC0xx` findings can consume `BL0xx`
//! findings the same way — only the span is source-anchored (line/column
//! in the `.bl` text) instead of instruction-anchored.

use std::fmt;

pub use braid_check::json_string;

/// Stable diagnostic codes of the braid-lang frontend.
///
/// Codes are part of the tool's interface: tests and scripts match on
/// them, so existing codes must never be renumbered (append new ones
/// instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `BL001`: lexical error — a character outside the language, or a
    /// malformed integer literal.
    Bl001Lex,
    /// `BL002`: parse error — unexpected token or premature end of input.
    Bl002Parse,
    /// `BL003`: use of a name that is not in scope.
    Bl003Unknown,
    /// `BL004`: a name is defined twice in the same scope.
    Bl004Duplicate,
    /// `BL005`: kind mismatch — an array used as a scalar, a scalar
    /// indexed, or an assignment to a loop induction variable.
    Bl005Kind,
    /// `BL006`: malformed loop — a non-positive or non-literal step.
    Bl006Loop,
    /// `BL007`: capacity exceeded — too many scalars for the register
    /// file, expression too deep for the temporary pool, too many or too
    /// large arrays, or an integer literal outside the encodable range.
    Bl007Capacity,
    /// `BL008` (warning): a `let`-bound scalar or declared array is never
    /// read.
    Bl008Unused,
    /// `BL009`: internal error — the generated program failed downstream
    /// ISA validation, translation, or the braid-contract check. Compiled
    /// output is annotated-clean by construction, so this firing is a
    /// compiler bug, not a user error.
    Bl009Internal,
}

impl Code {
    /// The stable `BL0xx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Bl001Lex => "BL001",
            Code::Bl002Parse => "BL002",
            Code::Bl003Unknown => "BL003",
            Code::Bl004Duplicate => "BL004",
            Code::Bl005Kind => "BL005",
            Code::Bl006Loop => "BL006",
            Code::Bl007Capacity => "BL007",
            Code::Bl008Unused => "BL008",
            Code::Bl009Internal => "BL009",
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::Bl008Unused => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Every code, in numbering order.
    pub const ALL: &'static [Code] = &[
        Code::Bl001Lex,
        Code::Bl002Parse,
        Code::Bl003Unknown,
        Code::Bl004Duplicate,
        Code::Bl005Kind,
        Code::Bl006Loop,
        Code::Bl007Capacity,
        Code::Bl008Unused,
        Code::Bl009Internal,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but compilable.
    Warning,
    /// The program is refused.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A byte span `[start, end)` in the source text, with the 1-based line
/// and column of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First byte offset covered (inclusive).
    pub start: u32,
    /// One past the last byte offset covered.
    pub end: u32,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `[start, end)` at the given line and column.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Span {
        Span { start, end, line, col }
    }

    /// A span from `self`'s start to `other`'s end.
    pub fn to(self, other: Span) -> Span {
        Span { end: other.end.max(self.end), ..self }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}", self.line, self.col)
    }
}

/// One finding of the frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Source span the finding is anchored to.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Span of the *defining* occurrence the finding refers to, when it
    /// differs from the anchor — e.g. the first definition behind a
    /// `BL004` duplicate.
    pub def_span: Option<Span>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity is derived from the code.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, span, message: message.into(), def_span: None }
    }

    /// Attaches the span of the defining occurrence behind the finding.
    pub fn with_def_span(mut self, span: Span) -> Diagnostic {
        self.def_span = Some(span);
        self
    }

    /// The severity (fixed per code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity(), self.code, self.message)?;
        write!(f, "\n  --> {}", self.span)?;
        if let Some(def) = self.def_span.filter(|d| *d != self.span) {
            write!(f, "\n  |   first defined at {def}")?;
        }
        Ok(())
    }
}

/// The full result of compiling one source text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LangReport {
    /// Name of the compiled program.
    pub program: String,
    /// Findings, in source order per pass.
    pub diagnostics: Vec<Diagnostic>,
}

impl LangReport {
    /// An empty report for `program`.
    pub fn new(program: impl Into<String>) -> LangReport {
        LangReport { program: program.into(), diagnostics: Vec::new() }
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == Severity::Warning).count()
    }

    /// Whether any error was found.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Whether the report is completely clean (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the report with the offending source line and a caret
    /// under each finding.
    pub fn render_with_source(&self, source: &str) -> String {
        let mut out = self.to_string();
        if self.is_clean() {
            return out;
        }
        let lines: Vec<&str> = source.lines().collect();
        out.push('\n');
        for d in &self.diagnostics {
            if let Some(text) = lines.get(d.span.line as usize - 1) {
                let width = (d.span.end - d.span.start).max(1) as usize;
                let caret_at = d.span.col as usize - 1;
                let width = width.min(text.len().saturating_sub(caret_at).max(1));
                out.push_str(&format!(
                    "\n{:>4} | {}\n     | {}{}",
                    d.span.line,
                    text,
                    " ".repeat(caret_at),
                    "^".repeat(width)
                ));
            }
        }
        out
    }

    /// Renders the machine-readable JSON form (hand-rolled; the workspace
    /// is hermetic). Same envelope shape as `braid_check`'s report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"program\":");
        json_string(&mut out, &self.program);
        out.push_str(&format!(",\"errors\":{},\"warnings\":{}", self.errors(), self.warnings()));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"start\":{},\"end\":{}",
                d.code,
                d.severity(),
                d.span.line,
                d.span.col,
                d.span.start,
                d.span.end
            ));
            if let Some(def) = d.def_span {
                out.push_str(&format!(",\"def_line\":{},\"def_col\":{}", def.line, def.col));
            }
            out.push_str(",\"message\":");
            json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "braid-lang: {} is clean", self.program);
        }
        writeln!(
            f,
            "braid-lang: {} findings for {} ({} errors, {} warnings)",
            self.diagnostics.len(),
            self.program,
            self.errors(),
            self.warnings()
        )?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::ALL.len(), 9);
        for (i, c) in Code::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("BL{:03}", i + 1));
        }
    }

    #[test]
    fn only_unused_is_a_warning() {
        for &c in Code::ALL {
            let expect = if c == Code::Bl008Unused { Severity::Warning } else { Severity::Error };
            assert_eq!(c.severity(), expect, "{c}");
        }
    }

    #[test]
    fn report_counts_and_json() {
        let mut r = LangReport::new("demo \"x\"");
        assert!(r.is_clean());
        r.push(Diagnostic::new(Code::Bl008Unused, Span::new(0, 1, 1, 1), "w"));
        assert!(!r.has_errors());
        r.push(
            Diagnostic::new(Code::Bl004Duplicate, Span::new(9, 10, 2, 3), "dup `x`")
                .with_def_span(Span::new(0, 1, 1, 1)),
        );
        assert!(r.has_errors());
        assert_eq!((r.errors(), r.warnings()), (1, 1));
        assert!(r.has_code(Code::Bl004Duplicate));
        let j = r.to_json();
        assert!(j.contains("\"program\":\"demo \\\"x\\\"\""));
        assert!(j.contains("\"code\":\"BL004\""));
        assert!(j.contains("\"line\":2,\"col\":3"));
        assert!(j.contains("\"def_line\":1,\"def_col\":1"));
        assert!(j.contains("\"errors\":1,\"warnings\":1"));
        let text = r.to_string();
        assert!(text.contains("error[BL004]: dup `x`"));
        assert!(text.contains("--> line 2:3"));
        assert!(text.contains("first defined at line 1:1"));
    }

    #[test]
    fn render_with_source_carets_the_span() {
        let src = "let x = 1;\nlet x = 2;\n";
        let mut r = LangReport::new("p");
        r.push(Diagnostic::new(Code::Bl004Duplicate, Span::new(15, 16, 2, 5), "dup"));
        let text = r.render_with_source(src);
        assert!(text.contains("let x = 2;"));
        assert!(text.contains("     |     ^"));
    }
}
