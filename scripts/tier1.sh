#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a warnings-as-errors
# clippy pass over the whole workspace (including the non-default
# braid-bench member). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p braid-sweep"
cargo test -q -p braid-sweep

echo "==> cargo test -q -p braid-check"
cargo test -q -p braid-check

echo "==> cargo test -q -p braid-obs"
cargo test -q -p braid-obs

echo "==> cargo test -q -p braid-serve"
cargo test -q -p braid-serve

echo "==> cargo test -q -p braid-trace"
cargo test -q -p braid-trace

echo "==> functional-tier differential suite (release: 10x throughput floor armed)"
cargo test --release -q --test functional_tier

echo "==> sampled-vs-full smoke (braidsim --tier sampled must land within 5%)"
full_cycles="$(cargo run --release -q --bin braidsim -- ooo @dot_product --report-json \
  | sed -n 's/^ *"cycles": \([0-9]*\),*/\1/p' | head -n 1)"
est_cycles="$(cargo run --release -q --bin braidsim -- ooo @dot_product --tier sampled --report-json \
  | sed -n 's/.*"est_cycles":\([0-9]*\).*/\1/p' | head -n 1)"
if [ -z "$full_cycles" ] || [ -z "$est_cycles" ]; then
  echo "sampled smoke: missing cycle fields (full=$full_cycles sampled=$est_cycles)" >&2
  exit 1
fi
err=$(( (est_cycles - full_cycles) * 1000 / full_cycles ))
if [ "${err#-}" -gt 50 ]; then
  echo "sampled smoke: estimate off by ${err} permille (full=$full_cycles sampled=$est_cycles)" >&2
  exit 1
fi
echo "sampled smoke OK (full=$full_cycles cycles, sampled est=$est_cycles, err=${err} permille)"

echo "==> cargo test -q -p braid-analyze"
cargo test -q -p braid-analyze

echo "==> cargo test -q -p braid-lang -p braid-tracein"
cargo test -q -p braid-lang -p braid-tracein

echo "==> braidc check over the kernel suite"
for kernel in fig2_life dot_product stencil pointer_chase histogram matmul crc_mix partition; do
  ./target/release/braidc check "@$kernel"
done

echo "==> braidc bound soundness smoke (bound <= simulated on every kernel x core)"
for kernel in fig2_life dot_product stencil pointer_chase histogram matmul crc_mix partition; do
  ./target/release/braidc bound "@$kernel" --verify > /dev/null
done
echo "bound smoke OK (8 kernels x 4 cores all sound)"

echo "==> braidc -O smoke (winner must be check-clean with cycles <= canonical)"
opt_json="$(./target/release/braidc -O @dot_product --json)"
opt_winner="$(echo "$opt_json" | sed -n 's/.*"winner":"\([a-z0-9-]*\)".*/\1/p')"
winner_cycles="$(echo "$opt_json" \
  | sed -n "s/.*\"name\":\"$opt_winner\",\"score\":[0-9]*,\"check_clean\":true,\"cycles\":\([0-9]*\).*/\1/p")"
canonical_cycles="$(echo "$opt_json" | sed -n 's/.*"canonical_cycles":\([0-9]*\).*/\1/p')"
if [ -z "$opt_winner" ] || [ -z "$winner_cycles" ] || [ -z "$canonical_cycles" ]; then
  echo "-O smoke: missing fields in: $opt_json" >&2
  exit 1
fi
if [ "$winner_cycles" -gt "$canonical_cycles" ]; then
  echo "-O smoke: winner $opt_winner at $winner_cycles cycles beats canonical $canonical_cycles backwards" >&2
  exit 1
fi
opt_emit="$(mktemp --suffix=.brisc)"
./target/release/braidc -O @dot_product --emit "$opt_emit" > /dev/null
./target/release/braidc check "$opt_emit"
rm -f "$opt_emit"
echo "-O smoke OK (winner=$opt_winner at $winner_cycles cycles <= canonical $canonical_cycles, output check-clean)"

echo "==> braid-lang loop-nest smoke (braidc build -> check -> simulate)"
lang_src="$(mktemp --suffix=.bl)"
lang_out="$(mktemp --suffix=.brisc)"
printf 'array a[16] = [3, 1, 4, 1, 5];\nlet s = 0;\nfor i in 0..16 { s = s + a[i] * a[i]; }\na[0] = s;\n' > "$lang_src"
./target/release/braidc build "$lang_src" --emit "$lang_out"
./target/release/braidc check "$lang_out"
rm -f "$lang_src" "$lang_out"
for nest in ln_saxpy_u2 ln_stencil_u1 ln_matmul_n8_t4 ln_chains_c4_u2; do
  ./target/release/braidc check "@$nest"
done
./target/release/braidsim all @ln_saxpy_u2 > /dev/null
echo "loop-nest smoke OK (built source check-clean, 4 nests checked, all cores simulate)"

echo "==> trace round-trip smoke (record -> replay twice -> identical cycle digest)"
trace_file="$(mktemp --suffix=.btrace)"
./target/release/braidsim trace-record @ln_chains_c4_u2 "$trace_file"
trace_d1="$(./target/release/braidsim trace-replay "$trace_file" | awk '/^cycle digest/{print $NF}')"
trace_d2="$(./target/release/braidsim trace-replay "$trace_file" | awk '/^cycle digest/{print $NF}')"
if [ -z "$trace_d1" ] || [ "$trace_d1" != "$trace_d2" ]; then
  echo "trace smoke: cycle digests differ or missing (d1=$trace_d1 d2=$trace_d2)" >&2
  exit 1
fi
rm -f "$trace_file"
echo "trace smoke OK (cycle digest $trace_d1 stable across replays)"

echo "==> sweep smoke (tiny grid, 2 threads)"
cargo run --release --bin braidsim -- sweep --name tier1-smoke --threads 2 \
  --workloads dot_product,fig2_life --cores inorder,braid
rm -f results/tier1-smoke.json results/tier1-smoke.partial.json

echo "==> pipeline-viewer smoke (braid @dot_product, Kanata log validated)"
pipeview_log="$(mktemp)"
cargo run --release --bin braidsim -- braid @dot_product --pipeview "$pipeview_log"
./target/release/braidsim check-kanata "$pipeview_log"
rm -f "$pipeview_log"

echo "==> serve smoke (braidd + braid-loadgen verify + clean drain)"
braidd_log="$(mktemp)"
./target/release/braidd --addr 127.0.0.1:0 --threads 2 > "$braidd_log" &
braidd_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$braidd_log" && break
  sleep 0.1
done
serve_addr="$(awk '/listening on/{print $NF}' "$braidd_log")"
if [ -z "$serve_addr" ]; then
  echo "braidd never came up:" >&2
  cat "$braidd_log" >&2
  kill "$braidd_pid" 2>/dev/null || true
  exit 1
fi
# --verify replays the mix on one connection and fails on any byte
# difference; the daemon must then drain and exit 0 on its own.
loadgen_out="$(./target/release/braid-loadgen --addr "$serve_addr" \
  --connections 2 --requests 50 --seed 7 --verify --shutdown)"
echo "$loadgen_out"
wait "$braidd_pid"
grep -q "drained and stopped" "$braidd_log"
echo "$loadgen_out" | grep -q "byte-identical"
echo "$loadgen_out" | grep -Eq "cache: [1-9][0-9]* hits"
rm -f "$braidd_log"

echo "==> serve metrics smoke (phase conservation + latency percentiles live)"
metrics_log="$(mktemp)"
./target/release/braidd --addr 127.0.0.1:0 --threads 2 > "$metrics_log" &
metrics_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$metrics_log" && break
  sleep 0.1
done
metrics_addr="$(awk '/listening on/{print $NF}' "$metrics_log")"
if [ -z "$metrics_addr" ]; then
  echo "metrics braidd never came up:" >&2
  cat "$metrics_log" >&2
  kill "$metrics_pid" 2>/dev/null || true
  exit 1
fi
# Seeded traffic, then the JSON report: the client-side latency summary
# must carry a p99 field with samples behind it.
metrics_json="$(./target/release/braid-loadgen --addr "$metrics_addr" \
  --connections 2 --requests 30 --seed 11 --json)"
echo "$metrics_json" | grep -q '"p99_us":'
echo "$metrics_json" | grep -q '"verified":true'
# The server's metrics document must report the phase decomposition as
# conserved (every span accounted for, phase time == class time).
metrics_doc="$(exec 3<>"/dev/tcp/${metrics_addr%:*}/${metrics_addr##*:}" \
  && printf '{"id":1,"kind":"metrics"}\n' >&3 && head -n 1 <&3 && exec 3<&-)"
echo "$metrics_doc" | grep -q '"conserved":true'
echo "$metrics_doc" | grep -q '"queue_wait":{"count":'
# Drain via a second one-shot connection.
(exec 3<>"/dev/tcp/${metrics_addr%:*}/${metrics_addr##*:}" \
  && printf '{"id":2,"kind":"shutdown"}\n' >&3 && head -n 1 <&3 > /dev/null)
wait "$metrics_pid"
grep -q "drained and stopped" "$metrics_log"
rm -f "$metrics_log"
echo "metrics smoke OK (conserved phases, p99 latency reported)"

echo "==> chaos smoke (braidd under fault injection, loadgen must still verify)"
chaos_log="$(mktemp)"
chaos_cache="$(mktemp -d)"
./target/release/braidd --addr 127.0.0.1:0 --threads 2 \
  --cache-dir "$chaos_cache" \
  --chaos 'seed=7,torn=0.08,drop=0.04,stall=0.04,stall_ms=5,panic=0.03,corrupt=0.12,enospc=0' \
  > "$chaos_log" &
chaos_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$chaos_log" && break
  sleep 0.1
done
chaos_addr="$(awk '/listening on/{print $NF}' "$chaos_log")"
if [ -z "$chaos_addr" ]; then
  echo "chaos braidd never came up:" >&2
  cat "$chaos_log" >&2
  kill "$chaos_pid" 2>/dev/null || true
  exit 1
fi
# Under every armed fault class the resilient client must absorb the
# damage: --verify still demands byte-identical responses.
chaos_out="$(./target/release/braid-loadgen --addr "$chaos_addr" \
  --connections 3 --requests 60 --seed 9 --timeout-ms 30000 --attempts 32 \
  --verify --shutdown)"
echo "$chaos_out"
wait "$chaos_pid"
grep -q "drained and stopped" "$chaos_log"
echo "$chaos_out" | grep -q "byte-identical"
rm -rf "$chaos_log" "$chaos_cache"

echo "==> crash-recovery smoke (kill -9 mid-write, warm hits must stay byte-identical)"
crash_cache="$(mktemp -d)"
crash_log="$(mktemp)"
./target/release/braidd --addr 127.0.0.1:0 --threads 2 --cache-dir "$crash_cache" \
  > "$crash_log" &
crash_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$crash_log" && break
  sleep 0.1
done
crash_addr="$(awk '/listening on/{print $NF}' "$crash_log")"
# Populate the disk tier, then kill the daemon without ceremony while it
# may still be writing.
cold_out="$(./target/release/braid-loadgen --addr "$crash_addr" \
  --connections 2 --requests 40 --seed 5)"
cold_digest="$(echo "$cold_out" | awk '/^response digest/{print $NF}')"
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true
# Restart over the same directory: the same mix must verify (cache hits
# included, byte-identical) and no corrupted entry may be served — any
# torn leftovers are swept or quarantined, visible in loadgen's summary.
./target/release/braidd --addr 127.0.0.1:0 --threads 2 --cache-dir "$crash_cache" \
  > "$crash_log" &
crash_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$crash_log" && break
  sleep 0.1
done
crash_addr="$(awk '/listening on/{print $NF}' "$crash_log")"
crash_out="$(./target/release/braid-loadgen --addr "$crash_addr" \
  --connections 2 --requests 40 --seed 5 --verify --shutdown)"
echo "$crash_out"
wait "$crash_pid"
grep -q "drained and stopped" "$crash_log"
echo "$crash_out" | grep -q "byte-identical"
echo "$crash_out" | grep -Eq "cache: [1-9][0-9]* hits"
# The warm run's responses must match the pre-crash run byte for byte:
# same seed, same mix, same digest — served largely from the disk tier.
warm_digest="$(echo "$crash_out" | awk '/^response digest/{print $NF}')"
if [ -z "$cold_digest" ] || [ "$cold_digest" != "$warm_digest" ]; then
  echo "crash-recovery digest mismatch: cold=$cold_digest warm=$warm_digest" >&2
  exit 1
fi
rm -rf "$crash_log" "$crash_cache"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1 OK"
