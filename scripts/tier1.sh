#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a warnings-as-errors
# clippy pass over the whole workspace (including the non-default
# braid-bench member). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p braid-sweep"
cargo test -q -p braid-sweep

echo "==> cargo test -q -p braid-check"
cargo test -q -p braid-check

echo "==> cargo test -q -p braid-obs"
cargo test -q -p braid-obs

echo "==> braidc check over the kernel suite"
for kernel in fig2_life dot_product stencil pointer_chase histogram matmul crc_mix partition; do
  ./target/release/braidc check "@$kernel"
done

echo "==> sweep smoke (tiny grid, 2 threads)"
cargo run --release --bin braidsim -- sweep --name tier1-smoke --threads 2 \
  --workloads dot_product,fig2_life --cores inorder,braid
rm -f results/tier1-smoke.json results/tier1-smoke.partial.json

echo "==> pipeline-viewer smoke (braid @dot_product, Kanata log validated)"
pipeview_log="$(mktemp)"
cargo run --release --bin braidsim -- braid @dot_product --pipeview "$pipeview_log"
./target/release/braidsim check-kanata "$pipeview_log"
rm -f "$pipeview_log"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1 OK"
