#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a warnings-as-errors
# clippy pass over the whole workspace (including the non-default
# braid-bench member). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p braid-sweep"
cargo test -q -p braid-sweep

echo "==> cargo test -q -p braid-check"
cargo test -q -p braid-check

echo "==> cargo test -q -p braid-obs"
cargo test -q -p braid-obs

echo "==> cargo test -q -p braid-serve"
cargo test -q -p braid-serve

echo "==> braidc check over the kernel suite"
for kernel in fig2_life dot_product stencil pointer_chase histogram matmul crc_mix partition; do
  ./target/release/braidc check "@$kernel"
done

echo "==> sweep smoke (tiny grid, 2 threads)"
cargo run --release --bin braidsim -- sweep --name tier1-smoke --threads 2 \
  --workloads dot_product,fig2_life --cores inorder,braid
rm -f results/tier1-smoke.json results/tier1-smoke.partial.json

echo "==> pipeline-viewer smoke (braid @dot_product, Kanata log validated)"
pipeview_log="$(mktemp)"
cargo run --release --bin braidsim -- braid @dot_product --pipeview "$pipeview_log"
./target/release/braidsim check-kanata "$pipeview_log"
rm -f "$pipeview_log"

echo "==> serve smoke (braidd + braid-loadgen verify + clean drain)"
braidd_log="$(mktemp)"
./target/release/braidd --addr 127.0.0.1:0 --threads 2 > "$braidd_log" &
braidd_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$braidd_log" && break
  sleep 0.1
done
serve_addr="$(awk '/listening on/{print $NF}' "$braidd_log")"
if [ -z "$serve_addr" ]; then
  echo "braidd never came up:" >&2
  cat "$braidd_log" >&2
  kill "$braidd_pid" 2>/dev/null || true
  exit 1
fi
# --verify replays the mix on one connection and fails on any byte
# difference; the daemon must then drain and exit 0 on its own.
loadgen_out="$(./target/release/braid-loadgen --addr "$serve_addr" \
  --connections 2 --requests 50 --seed 7 --verify --shutdown)"
echo "$loadgen_out"
wait "$braidd_pid"
grep -q "drained and stopped" "$braidd_log"
echo "$loadgen_out" | grep -q "byte-identical"
echo "$loadgen_out" | grep -Eq "cache: [1-9][0-9]* hits"
rm -f "$braidd_log"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1 OK"
