#!/usr/bin/env bash
# Serving-latency benchmark: boots an ephemeral braidd, drives a seeded
# loadgen mix, and appends one JSON-lines point to BENCH_serve.json so
# the repo carries a tracked latency trajectory across commits.
#
# Usage: scripts/bench_serve.sh [label]
#   label   free-form point label (default: current git short hash)
#
# The appended point is the loadgen --json report (client-observed
# p50/p95/p99 per class) wrapped with the label, the commit, and the
# request-mix parameters. Latency numbers are host time and vary by
# machine — the trajectory is meaningful per machine, the schema is
# stable everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo untracked)}"
commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
connections=4
requests=200
seed=42

echo "==> cargo build --release (daemon + loadgen)"
cargo build --release --bin braidd --bin braid-loadgen

bench_log="$(mktemp)"
./target/release/braidd --addr 127.0.0.1:0 --threads 0 > "$bench_log" &
bench_pid=$!
trap 'kill "$bench_pid" 2>/dev/null || true; rm -f "$bench_log"' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "$bench_log" && break
  sleep 0.1
done
addr="$(awk '/listening on/{print $NF}' "$bench_log")"
if [ -z "$addr" ]; then
  echo "bench_serve: braidd never came up:" >&2
  cat "$bench_log" >&2
  exit 1
fi

report="$(./target/release/braid-loadgen --addr "$addr" \
  --connections "$connections" --requests "$requests" --seed "$seed" \
  --json --shutdown)"
wait "$bench_pid"
grep -q "drained and stopped" "$bench_log"
trap - EXIT
rm -f "$bench_log"

echo "$report" | grep -q '"p99_us":' || {
  echo "bench_serve: loadgen report missing latency summary: $report" >&2
  exit 1
}

point="{\"label\":\"$label\",\"commit\":\"$commit\",\"connections\":$connections,\"requests\":$requests,\"seed\":$seed,\"report\":$report}"
echo "$point" >> BENCH_serve.json
echo "appended point '$label' to BENCH_serve.json:"
echo "$report"
