//! # braid: facade crate for the braid-microarchitecture reproduction
//!
//! Re-exports the workspace crates implementing *Achieving Out-of-Order
//! Performance with Almost In-Order Complexity* (Tseng & Patt, ISCA 2008).
//! See the individual crates for details:
//!
//! * [`isa`] — the BRISC instruction set with braid annotation bits.
//! * [`uarch`] — microarchitecture substrates (caches, predictors, LSQ...).
//! * [`compiler`] — the braid-forming binary translator.
//! * [`core`] — the functional executor and the four timing cores.
//! * [`workloads`] — the synthetic SPEC CPU2000-profiled workload suite.
//! * [`sweep`] — the parallel (workload × core × config) sweep engine.
//! * [`obs`] — pipeline observability: event records, CPI stacks, Konata
//!   pipeline-viewer export and JSON metrics.
//! * [`lang`] — the braid-lang loop-nest language frontend (`braidc build`).
//! * [`tracein`] — the versioned instruction/memory trace format and the
//!   trace-replay frontend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use braid_analyze as analyze;
pub use braid_check as check;
pub use braid_compiler as compiler;
pub use braid_core as core;
pub use braid_isa as isa;
pub use braid_lang as lang;
pub use braid_obs as obs;
pub use braid_serve as serve;
pub use braid_sweep as sweep;
pub use braid_trace as trace;
pub use braid_tracein as tracein;
pub use braid_uarch as uarch;
pub use braid_workloads as workloads;
