//! `braidsim` — run a BRISC program (or a suite benchmark) on any of the
//! four execution-core models.
//!
//! ```text
//! braidsim <core> <file.s | file.bl | @benchmark> [--width N] [--perfect] [--fuel N]
//!          [--tier full|func|sampled] [--sample-period N] [--sample-warmup N]
//!          [--sample-len N] [--lockstep] [--source]
//!          [--report-json] [--cpi-stack] [--pipeview FILE] [--metrics FILE]
//! braidsim sweep [--workloads a,b] [--cores c,d] [--widths ...] [--beus ...]
//!                [--fifos ...] [--windows ...] [--bypasses ...] [--tiers t1,t2] [--scale F]
//!                [--perfect] [--threads N] [--name NAME] [--out FILE]
//!                [--resume]
//! braidsim trace-record <file.s | file.bl | @benchmark> <out.btrace>
//!                       [--fuel N] [--jsonl]
//! braidsim trace-replay <file.btrace | file.jsonl> [--cores a,b,c] [--width N]
//!                       [--report-json]
//! braidsim check-kanata <file.kanata>
//!
//! cores: ooo | braid | dep | inorder | all
//! ```
//!
//! Examples:
//!
//! ```text
//! braidsim all my_kernel.s
//! braidsim braid @gcc --perfect
//! braidsim ooo @mgrid --width 16
//! braidsim braid @fig2_life --cpi-stack --pipeview life.kanata
//! braidsim ooo @dot_product --metrics dot.json --report-json
//! braidsim sweep --workloads gcc,mcf --widths 4,8,16 --threads 8
//! ```
//!
//! Execution tiers (`--tier`): `full` (default) is exact cycle-level
//! simulation; `func` runs the fast functional interpreter only (no
//! timing — prints host throughput and the architectural state digest);
//! `sampled` fast-forwards functionally and times sampled intervals,
//! reporting extrapolated IPC and CPI. `--sample-period/-warmup/-len`
//! tune the sampling windows; `--lockstep` compares the fast interpreter
//! against the reference at every interval boundary (always on in debug
//! builds). `--pipeview`/`--metrics` need `--tier full`.
//!
//! Observability flags: `--report-json` prints the full `SimReport` as
//! deterministic JSON (host wall-clock time excluded); `--cpi-stack`
//! prints the per-cause cycle breakdown; `--pipeview` writes a
//! Konata-compatible pipeline log; `--metrics` writes occupancy, hotspot
//! and CPI metrics as JSON. `--pipeview`/`--metrics` attach an event
//! collector, so they require a single core (not `all`). `check-kanata`
//! validates a pipeline log with the in-repo format checker.
//!
//! The `sweep` subcommand expands the axes into a (workload × core ×
//! config) grid, shards it across a work-stealing thread pool, snapshots
//! partial results to `results/<name>.partial.json` after every point, and
//! writes the deterministic aggregate to `results/<name>.json` (the same
//! bytes for any `--threads`). `--resume` reuses a matching snapshot.
//!
//! Workloads can be braid-lang source (`.bl` extension, or any path with
//! `--source`), compiled on the fly, and the registered `ln_*` loop-nest
//! family resolves through `@name` like any benchmark. `trace-record`
//! captures a self-contained trace file (framed binary by default,
//! `--jsonl` for JSON-lines); `trace-replay` drives it through the four
//! timing cores and prints the canonical cycle digest — byte-identical
//! across replays of the same file.

use std::fs;
use std::process::ExitCode;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid::core::functional::Machine;
use braid::core::processor::{run_tier, CoreConfig, TierReport};
use braid::core::report::SimReport;
use braid::core::{SamplingConfig, SimError, Tier};
use braid::isa::asm::assemble;
use braid::isa::Program;
use braid::obs::{check_kanata, metrics_json, report_json, write_kanata, PipelineObserver};

struct Options {
    width: u32,
    perfect: bool,
    fuel: u64,
    tier: Tier,
    sampling: SamplingConfig,
    report_json: bool,
    cpi_stack: bool,
    pipeview: Option<String>,
    metrics: Option<String>,
    source: bool,
}

impl Options {
    /// Whether an event collector must be attached to the run.
    fn observe(&self) -> bool {
        self.pipeview.is_some() || self.metrics.is_some()
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: braidsim <ooo|braid|dep|inorder|all> <file.s | file.bl | @benchmark> [--width N] [--perfect] [--fuel N]");
    eprintln!("                [--tier full|func|sampled] [--sample-period N] [--sample-warmup N] [--sample-len N] [--lockstep]");
    eprintln!("                [--source] [--report-json] [--cpi-stack] [--pipeview FILE] [--metrics FILE]");
    eprintln!("       braidsim sweep [--workloads a,b] [--cores c,d] [--widths ...] [--beus ...]");
    eprintln!("                      [--fifos ...] [--windows ...] [--bypasses ...] [--tiers t1,t2] [--scale F]");
    eprintln!("                      [--perfect] [--threads N] [--name NAME] [--out FILE] [--resume]");
    eprintln!("       braidsim trace-record <file.s | file.bl | @benchmark> <out.btrace> [--fuel N] [--jsonl]");
    eprintln!("       braidsim trace-replay <file.btrace | file.jsonl> [--cores a,b,c] [--width N] [--report-json]");
    eprintln!("       braidsim check-kanata <file.kanata>");
    eprintln!("exit codes: 0 clean, 1 findings/failure, 2 usage error");
    ExitCode::from(2)
}

/// The `check-kanata` subcommand: validate a pipeline-viewer log.
fn run_check_kanata(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("braidsim: check-kanata takes exactly one file");
        return usage();
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("braidsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_kanata(&text) {
        Ok(s) => {
            println!(
                "{path}: ok — {} records ({} retired, {} flushed) over {} cycles",
                s.records, s.retired, s.flushed, s.cycles
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("braidsim: {path}: invalid kanata log: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Emits whatever observability outputs were requested for one finished
/// core run. `program` is the program the core actually executed (the
/// translated one for the braid machine), so viewer labels and hotspot
/// disassembly line up with the events.
fn emit_outputs(
    core_key: &str,
    program: &Program,
    rep: &SimReport,
    obs: &PipelineObserver,
    opts: &Options,
) -> Result<(), String> {
    if opts.report_json {
        println!("{}", report_json(rep));
    }
    if opts.cpi_stack {
        print!("{}", rep.cpi);
    }
    if let Some(path) = &opts.pipeview {
        let log = write_kanata(program, obs);
        fs::write(path, &log).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path} ({} pipeline records)", obs.records().len());
    }
    if let Some(path) = &opts.metrics {
        let doc = metrics_json(program, core_key, rep, obs);
        fs::write(path, format!("{doc}\n")).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Reports one core's result and emits observability outputs; returns
/// `false` on failure.
fn finish_core(
    label: &str,
    core_key: &str,
    program: &Program,
    result: Result<SimReport, SimError>,
    obs: &PipelineObserver,
    opts: &Options,
) -> bool {
    match result {
        Ok(rep) => {
            report(label, &rep);
            if let Err(e) = emit_outputs(core_key, program, &rep, obs, opts) {
                eprintln!("braidsim: {e}");
                return false;
            }
            true
        }
        Err(e) => {
            eprintln!("braidsim: {label} simulation failed:\n{e}");
            false
        }
    }
}

fn load_program(spec: &str, force_source: bool) -> Result<(Program, u64), String> {
    if let Some(name) = spec.strip_prefix('@') {
        let w = braid::workloads::by_name_any(name, 1.0)
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        Ok((w.program, w.fuel))
    } else if !force_source && spec.ends_with(".brisc") {
        let bytes = fs::read(spec).map_err(|e| format!("{spec}: {e}"))?;
        let mut p = braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{spec}: {e}"))?;
        p.name = spec.to_string();
        Ok((p, 50_000_000))
    } else if force_source || spec.ends_with(".bl") {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let name = std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("program");
        let out = braid::lang::compile(name, &source)
            .map_err(|r| format!("{spec}:\n{}", r.render_with_source(&source)))?;
        Ok((out.program, 50_000_000))
    } else {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let mut p = assemble(&source).map_err(|e| format!("{spec}: {e}"))?;
        p.name = spec.to_string();
        Ok((p, 50_000_000))
    }
}

/// The `trace-record` subcommand: functionally execute a workload and
/// write a self-contained trace file (framed binary, or JSON-lines with
/// `--jsonl`).
fn run_trace_record(args: &[String]) -> ExitCode {
    let mut fuel: u64 = 0;
    let mut jsonl = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jsonl" => jsonl = true,
            "--fuel" if i + 1 < args.len() => {
                i += 1;
                fuel = args[i].parse().unwrap_or(0);
            }
            a if !a.starts_with("--") => positional.push(&args[i]),
            other => {
                eprintln!("braidsim: trace-record: unknown option {other}");
                return usage();
            }
        }
        i += 1;
    }
    let [spec, out_path] = positional.as_slice() else {
        eprintln!("braidsim: trace-record takes a workload and an output file");
        return usage();
    };
    let (program, default_fuel) = match load_program(spec, false) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("braidsim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fuel = if fuel > 0 { fuel } else { default_fuel };
    let file = match braid::tracein::TraceFile::record(&program, fuel) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("braidsim: trace-record: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes = if jsonl { file.to_jsonl().map(String::into_bytes) } else { file.to_binary() };
    let bytes = match bytes {
        Ok(b) => b,
        Err(e) => {
            eprintln!("braidsim: trace-record: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::write(out_path, &bytes) {
        eprintln!("braidsim: {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    match file.digest() {
        Ok(d) => println!(
            "wrote {out_path}: {} dynamic instructions, trace digest {d}",
            file.trace.len()
        ),
        Err(e) => {
            eprintln!("braidsim: trace-record: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The `trace-replay` subcommand: drive a recorded trace through the
/// timing cores and print the canonical cycle digest.
fn run_trace_replay(args: &[String]) -> ExitCode {
    let mut width: u32 = 8;
    let mut report_json = false;
    let mut core_names: Vec<String> =
        ["inorder", "dep", "ooo", "braid"].map(String::from).to_vec();
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report-json" => report_json = true,
            "--width" if i + 1 < args.len() => {
                i += 1;
                width = args[i].parse().unwrap_or(8);
            }
            "--cores" if i + 1 < args.len() => {
                i += 1;
                core_names = args[i].split(',').map(String::from).collect();
            }
            a if !a.starts_with("--") => positional.push(&args[i]),
            other => {
                eprintln!("braidsim: trace-replay: unknown option {other}");
                return usage();
            }
        }
        i += 1;
    }
    let [path] = positional.as_slice() else {
        eprintln!("braidsim: trace-replay takes exactly one trace file");
        return usage();
    };
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("braidsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // JSON-lines files start with the `{` of the header object; the
    // framed binary payload starts with the trace magic.
    let file = if bytes.first() == Some(&b'{') {
        match std::str::from_utf8(&bytes) {
            Ok(text) => braid::tracein::TraceFile::from_jsonl(text),
            Err(_) => {
                eprintln!("braidsim: {path}: JSON-lines trace is not UTF-8");
                return ExitCode::FAILURE;
            }
        }
    } else {
        braid::tracein::TraceFile::from_binary(&bytes)
    };
    let file = match file {
        Ok(f) => f,
        Err(e) => {
            eprintln!("braidsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} dynamic instructions (recorded under fuel {})",
        file.name,
        file.trace.len(),
        file.fuel
    );
    let opts = Options {
        width,
        perfect: false,
        fuel: 0,
        tier: Tier::Full,
        sampling: SamplingConfig::default(),
        report_json: false,
        cpi_stack: false,
        pipeview: None,
        metrics: None,
        source: false,
    };
    let mut cores = Vec::new();
    for name in &core_names {
        match tier_core_config(name, &opts) {
            Some(c) => cores.push(c),
            None => {
                eprintln!("braidsim: trace-replay: unknown core {name:?}");
                return usage();
            }
        }
    }
    let mut reports: Vec<(&str, SimReport)> = Vec::with_capacity(cores.len());
    for core in &cores {
        match braid::tracein::replay(&file, core) {
            Ok(rep) => {
                if report_json {
                    println!(
                        "{{\"core\":\"{}\",\"cycles\":{},\"instructions\":{}}}",
                        core.name(),
                        rep.cycles,
                        rep.instructions
                    );
                } else {
                    report(core.name(), &rep);
                }
                reports.push((core.name(), rep));
            }
            Err(e) => {
                eprintln!("braidsim: trace-replay: {} failed: {e}", core.name());
                return ExitCode::FAILURE;
            }
        }
    }
    let borrowed: Vec<(&str, &SimReport)> = reports.iter().map(|(n, r)| (*n, r)).collect();
    match braid::tracein::cycle_digest_of(&file, &borrowed) {
        Ok(d) => println!("cycle digest: {d}"),
        Err(e) => {
            eprintln!("braidsim: trace-replay: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn report(label: &str, r: &SimReport) {
    println!("--- {label} ---");
    println!("{r}");
}

/// Parses a comma-separated numeric axis like `4,8,16`.
fn parse_axis(flag: &str, value: &str) -> Result<Vec<u32>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u32>().map_err(|_| format!("{flag}: bad value {s:?}")))
        .collect()
}

/// The `sweep` subcommand: expand, shard, aggregate, report.
fn run_sweep_cmd(args: &[String]) -> ExitCode {
    use braid::sweep::{aggregate, run_sweep, write_json, CoreModel, Json, SweepSpec};

    let mut spec = SweepSpec::new("sweep");
    // A small kernel grid by default: 4 workloads × 4 cores = 16 points.
    spec.workloads =
        ["fig2_life", "dot_product", "stencil", "pointer_chase"].map(String::from).to_vec();
    let mut threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut out: Option<String> = None;
    let mut resume = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let r: Result<(), String> = match flag {
            "--perfect" => {
                spec.perfect = true;
                Ok(())
            }
            "--resume" => {
                resume = true;
                Ok(())
            }
            "--widths" | "--beus" | "--fifos" | "--windows" | "--bypasses" | "--workloads"
            | "--cores" | "--tiers" | "--scale" | "--threads" | "--name" | "--out" => {
                i += 1;
                match (flag, args.get(i)) {
                    (_, None) => Err(format!("{flag} needs a value")),
                    ("--widths", Some(v)) => parse_axis(flag, v).map(|a| spec.widths = a),
                    ("--beus", Some(v)) => parse_axis(flag, v).map(|a| spec.beus = a),
                    ("--fifos", Some(v)) => parse_axis(flag, v).map(|a| spec.fifo_depths = a),
                    ("--windows", Some(v)) => parse_axis(flag, v).map(|a| spec.windows = a),
                    ("--bypasses", Some(v)) => parse_axis(flag, v).map(|a| spec.bypasses = a),
                    ("--workloads", Some(v)) => {
                        spec.workloads = v.split(',').map(String::from).collect();
                        Ok(())
                    }
                    ("--cores", Some(v)) => v
                        .split(',')
                        .map(|s| {
                            CoreModel::parse(s).ok_or_else(|| format!("unknown core {s:?}"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                        .map(|cores| spec.cores = cores),
                    ("--tiers", Some(v)) => v
                        .split(',')
                        .map(|s| Tier::parse(s).ok_or_else(|| format!("unknown tier {s:?}")))
                        .collect::<Result<Vec<_>, _>>()
                        .map(|tiers| spec.tiers = tiers),
                    ("--scale", Some(v)) => v
                        .parse()
                        .map(|s| spec.scale = s)
                        .map_err(|_| format!("--scale: bad value {v:?}")),
                    ("--threads", Some(v)) => v
                        .parse()
                        .map(|t: usize| threads = t.max(1))
                        .map_err(|_| format!("--threads: bad value {v:?}")),
                    ("--name", Some(v)) => {
                        spec.name = v.clone();
                        Ok(())
                    }
                    (_, Some(v)) => {
                        out = Some(v.clone());
                        Ok(())
                    }
                }
            }
            other => Err(format!("unknown option {other}")),
        };
        if let Err(e) = r {
            eprintln!("braidsim: sweep: {e}");
            return usage();
        }
        i += 1;
    }

    let points = spec.expand();
    if points.is_empty() {
        eprintln!("braidsim: sweep: the grid is empty (no workloads or cores)");
        return ExitCode::FAILURE;
    }
    let out = out.unwrap_or_else(|| format!("results/{}.json", spec.name));
    let partial = std::path::PathBuf::from(format!("results/{}.partial.json", spec.name));
    println!(
        "sweep `{}`: {} grid points on {} threads (digest {})",
        spec.name,
        points.len(),
        threads,
        spec.digest()
    );

    let run = match run_sweep(&spec, threads, Some(&partial), resume) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("braidsim: sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(w) = &run.snapshot_error {
        eprintln!("braidsim: sweep: warning: snapshot writes failed: {w}");
    }

    let mut failures = 0usize;
    for o in &run.outcomes {
        match &o.stats {
            Ok(s) => println!("  [{:3}] {:<40} ipc {:.3}", o.point.index, o.point.key(), s.ipc()),
            Err(e) => {
                failures += 1;
                println!("  [{:3}] {:<40} ERROR {e}", o.point.index, o.point.key());
            }
        }
    }
    let doc = aggregate(&run);
    if let Some(Json::Obj(fields)) = doc.get("summary").cloned() {
        for (k, v) in fields {
            if let Json::Float(x) = v {
                println!("  {k}: {x:.3}");
            }
        }
    }
    println!(
        "{} points ({} reused) in {:.2}s, {:.2} Mcycles/s aggregate",
        run.outcomes.len(),
        run.reused,
        run.host_nanos as f64 / 1e9,
        run.cycles_per_sec() / 1e6
    );
    // Per-point host timing: straggler and imbalance diagnostics. Stdout
    // only — host time never enters the aggregate file.
    println!("timing {}", braid::trace::sweep_timing(&run).compact());
    if let Err(e) = write_json(std::path::Path::new(&out), &doc) {
        eprintln!("braidsim: sweep: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    let _ = std::fs::remove_file(&partial);
    if failures > 0 {
        eprintln!("braidsim: sweep: {failures} point(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Builds the tier driver's core selection, mirroring the full-tier
/// per-core configuration exactly (width, perfect, and the braid
/// machine's CLI mispredict penalty).
fn tier_core_config(name: &str, opts: &Options) -> Option<CoreConfig> {
    let perfect = |mut c: braid::core::config::CommonConfig| {
        if opts.perfect {
            c = c.perfect();
        }
        c
    };
    Some(match name {
        "ooo" => {
            let mut cfg = OooConfig::paper_wide(opts.width);
            cfg.common = perfect(cfg.common);
            CoreConfig::Ooo(cfg)
        }
        "dep" => {
            let mut cfg = DepConfig::paper_wide(opts.width);
            cfg.common = perfect(cfg.common);
            CoreConfig::Dep(cfg)
        }
        "inorder" => {
            let mut cfg = InOrderConfig::paper_wide(opts.width);
            cfg.common = perfect(cfg.common);
            CoreConfig::InOrder(cfg)
        }
        "braid" => {
            let mut cfg = BraidConfig::paper_wide(opts.width);
            cfg.common = perfect(cfg.common);
            cfg.common.mispredict_penalty = 19;
            CoreConfig::Braid(cfg)
        }
        _ => return None,
    })
}

/// Deterministic JSON for a tiered report (host wall-clock excluded, IPC
/// as integer micro-IPC so the bytes are stable across hosts).
fn tier_json(core: &str, tier: Tier, rep: &TierReport) -> String {
    let mut s = format!("{{\"core\":\"{core}\",\"tier\":\"{}\"", tier.name());
    s.push_str(&format!(",\"instructions\":{}", rep.instructions()));
    match rep {
        TierReport::Full(r) => {
            s.push_str(&format!(",\"cycles\":{}", r.cycles));
        }
        TierReport::Func(r) => {
            s.push_str(&format!(",\"digest\":\"{:016x}\"", r.digest));
        }
        TierReport::Sampled(r) => {
            s.push_str(&format!(
                ",\"est_cycles\":{},\"est_ipc_micro\":{},\"intervals\":{},\"timed_insts\":{},\"measured_insts\":{},\"measured_cycles\":{},\"overhead_cycles\":{}",
                r.est_cycles,
                (r.est_ipc() * 1e6).round() as u64,
                r.intervals,
                r.timed_insts,
                r.measured_insts,
                r.measured_cycles,
                r.overhead_cycles,
            ));
            s.push_str(",\"cpi\":{");
            let mut first = true;
            for (cause, n) in r.cpi.iter() {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\"{}\":{n}", cause.key()));
            }
            s.push('}');
        }
    }
    s.push('}');
    s
}

/// Runs the functional or sampled tier over the selected core(s).
fn run_tiered(core: &str, program: &Program, fuel: u64, opts: &Options) -> ExitCode {
    let names: Vec<&str> = if core == "all" {
        vec!["ooo", "dep", "inorder", "braid"]
    } else {
        vec![core]
    };
    // The functional tier has no timing core at all, so without braid
    // translation in play every selection runs the same interpreter once.
    let names: Vec<&str> = if opts.tier == Tier::Func && core == "all" {
        vec!["inorder", "braid"]
    } else {
        names
    };
    for name in names {
        let Some(cfg) = tier_core_config(name, opts) else {
            return usage();
        };
        match run_tier(program, &cfg, opts.tier, fuel, &opts.sampling) {
            Ok(rep) => {
                println!("--- {name} ({} tier) ---", opts.tier);
                match &rep {
                    TierReport::Full(r) => println!("{r}"),
                    TierReport::Func(r) => println!("{r}"),
                    TierReport::Sampled(r) => {
                        println!("{r}");
                        if opts.cpi_stack {
                            print!("{}", r.cpi);
                        }
                    }
                }
                if opts.report_json {
                    println!("{}", tier_json(name, opts.tier, &rep));
                }
            }
            Err(e) => {
                eprintln!("braidsim: {name} ({} tier) failed: {e}", opts.tier);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("braidsim {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return run_sweep_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("check-kanata") {
        return run_check_kanata(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-record") {
        return run_trace_record(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace-replay") {
        return run_trace_replay(&args[1..]);
    }
    if args.len() < 2 {
        return usage();
    }
    let core = args[0].as_str();
    let spec = args[1].as_str();
    let mut opts = Options {
        width: 8,
        perfect: false,
        fuel: 0,
        tier: Tier::Full,
        sampling: SamplingConfig::default(),
        report_json: false,
        cpi_stack: false,
        pipeview: None,
        metrics: None,
        source: false,
    };
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--perfect" => opts.perfect = true,
            "--source" => opts.source = true,
            "--report-json" => opts.report_json = true,
            "--cpi-stack" => opts.cpi_stack = true,
            "--lockstep" => opts.sampling.lockstep = true,
            "--width" if i + 1 < args.len() => {
                i += 1;
                opts.width = args[i].parse().unwrap_or(8);
            }
            "--fuel" if i + 1 < args.len() => {
                i += 1;
                opts.fuel = args[i].parse().unwrap_or(0);
            }
            "--tier" if i + 1 < args.len() => {
                i += 1;
                match Tier::parse(&args[i]) {
                    Some(t) => opts.tier = t,
                    None => {
                        eprintln!("braidsim: unknown tier {:?}", args[i]);
                        return usage();
                    }
                }
            }
            "--sample-period" if i + 1 < args.len() => {
                i += 1;
                opts.sampling.period = args[i].parse().unwrap_or(opts.sampling.period);
            }
            "--sample-warmup" if i + 1 < args.len() => {
                i += 1;
                opts.sampling.warmup = args[i].parse().unwrap_or(opts.sampling.warmup);
            }
            "--sample-len" if i + 1 < args.len() => {
                i += 1;
                opts.sampling.sample = args[i].parse().unwrap_or(opts.sampling.sample);
            }
            "--pipeview" if i + 1 < args.len() => {
                i += 1;
                opts.pipeview = Some(args[i].clone());
            }
            "--metrics" if i + 1 < args.len() => {
                i += 1;
                opts.metrics = Some(args[i].clone());
            }
            other => {
                eprintln!("braidsim: unknown option {other}");
                return usage();
            }
        }
        i += 1;
    }
    if opts.observe() && core == "all" {
        eprintln!("braidsim: --pipeview/--metrics need a single core, not `all`");
        return usage();
    }

    let (program, default_fuel) = match load_program(spec, opts.source) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("braidsim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fuel = if opts.fuel > 0 { opts.fuel } else { default_fuel };

    if opts.tier != Tier::Full {
        if opts.observe() {
            eprintln!("braidsim: --pipeview/--metrics need --tier full");
            return usage();
        }
        if !["ooo", "dep", "inorder", "braid", "all"].contains(&core) {
            return usage();
        }
        return run_tiered(core, &program, fuel, &opts);
    }

    let mut m = Machine::new(&program);
    let trace = match m.run(&program, fuel) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("braidsim: functional run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}: {} dynamic instructions", program.name, trace.len());

    let perfect = |mut c: braid::core::config::CommonConfig| {
        if opts.perfect {
            c = c.perfect();
        }
        c
    };
    let want = |name: &str| core == name || core == "all";

    if want("ooo") {
        let mut cfg = OooConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        let core = OooCore::new(cfg);
        let mut obs = PipelineObserver::new();
        let result = if opts.observe() {
            core.run_observed(&program, &trace, &mut obs)
        } else {
            core.run(&program, &trace)
        };
        if !finish_core("out-of-order", "ooo", &program, result, &obs, &opts) {
            return ExitCode::FAILURE;
        }
    }
    if want("dep") {
        let mut cfg = DepConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        let core = DepSteerCore::new(cfg);
        let mut obs = PipelineObserver::new();
        let result = if opts.observe() {
            core.run_observed(&program, &trace, &mut obs)
        } else {
            core.run(&program, &trace)
        };
        if !finish_core("dependence-steering", "dep", &program, result, &obs, &opts) {
            return ExitCode::FAILURE;
        }
    }
    if want("inorder") {
        let mut cfg = InOrderConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        let core = InOrderCore::new(cfg);
        let mut obs = PipelineObserver::new();
        let result = if opts.observe() {
            core.run_observed(&program, &trace, &mut obs)
        } else {
            core.run(&program, &trace)
        };
        if !finish_core("in-order", "inorder", &program, result, &obs, &opts) {
            return ExitCode::FAILURE;
        }
    }
    if want("braid") {
        let t = match translate(&program, &TranslatorConfig { self_check: false, ..Default::default() }) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("braidsim: translation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The braid machine refuses contract-violating programs outright;
        // a corrupted translation must never reach the timing model.
        let check = t.check(&program, &braid::check::CheckConfig::default());
        if check.has_errors() {
            eprintln!("braidsim: refusing ill-formed braid program:\n{check}");
            return ExitCode::FAILURE;
        }
        let mut mb = Machine::new(&t.program);
        let braid_trace = match mb.run(&t.program, fuel) {
            Ok(tr) => tr,
            Err(e) => {
                eprintln!("braidsim: braid functional run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut cfg = BraidConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        cfg.common.mispredict_penalty = 19;
        let core = BraidCore::new(cfg);
        let mut obs = PipelineObserver::new();
        let result = if opts.observe() {
            core.run_observed(&t.program, &braid_trace, &mut obs)
        } else {
            core.run(&t.program, &braid_trace)
        };
        if !finish_core("braid", "braid", &t.program, result, &obs, &opts) {
            return ExitCode::FAILURE;
        }
    }
    if !["ooo", "dep", "inorder", "braid", "all"].contains(&core) {
        return usage();
    }
    ExitCode::SUCCESS
}
