//! `braidsim` — run a BRISC program (or a suite benchmark) on any of the
//! four execution-core models.
//!
//! ```text
//! braidsim <core> <file.s | @benchmark> [--width N] [--perfect] [--fuel N]
//!
//! cores: ooo | braid | dep | inorder | all
//! ```
//!
//! Examples:
//!
//! ```text
//! braidsim all my_kernel.s
//! braidsim braid @gcc --perfect
//! braidsim ooo @mgrid --width 16
//! ```

use std::fs;
use std::process::ExitCode;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid::core::functional::Machine;
use braid::core::report::SimReport;
use braid::core::SimError;
use braid::isa::asm::assemble;
use braid::isa::Program;

struct Options {
    width: u32,
    perfect: bool,
    fuel: u64,
}

fn usage() -> ExitCode {
    eprintln!("usage: braidsim <ooo|braid|dep|inorder|all> <file.s | @benchmark> [--width N] [--perfect] [--fuel N]");
    ExitCode::from(2)
}

fn load_program(spec: &str) -> Result<(Program, u64), String> {
    if let Some(name) = spec.strip_prefix('@') {
        let w = braid::workloads::by_name(name, 1.0)
            .or_else(|| braid::workloads::kernel_suite().into_iter().find(|k| k.name == name))
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        Ok((w.program, w.fuel))
    } else if spec.ends_with(".brisc") {
        let bytes = fs::read(spec).map_err(|e| format!("{spec}: {e}"))?;
        let mut p = braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{spec}: {e}"))?;
        p.name = spec.to_string();
        Ok((p, 50_000_000))
    } else {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let mut p = assemble(&source).map_err(|e| format!("{spec}: {e}"))?;
        p.name = spec.to_string();
        Ok((p, 50_000_000))
    }
}

fn report_result(label: &str, r: Result<SimReport, SimError>) -> bool {
    match r {
        Ok(rep) => {
            report(label, &rep);
            true
        }
        Err(e) => {
            eprintln!("braidsim: {label} simulation failed:\n{e}");
            false
        }
    }
}

fn report(label: &str, r: &SimReport) {
    println!("--- {label} ---");
    println!("{r}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let core = args[0].as_str();
    let spec = args[1].as_str();
    let mut opts = Options { width: 8, perfect: false, fuel: 0 };
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--perfect" => opts.perfect = true,
            "--width" if i + 1 < args.len() => {
                i += 1;
                opts.width = args[i].parse().unwrap_or(8);
            }
            "--fuel" if i + 1 < args.len() => {
                i += 1;
                opts.fuel = args[i].parse().unwrap_or(0);
            }
            other => {
                eprintln!("braidsim: unknown option {other}");
                return usage();
            }
        }
        i += 1;
    }

    let (program, default_fuel) = match load_program(spec) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("braidsim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fuel = if opts.fuel > 0 { opts.fuel } else { default_fuel };

    let mut m = Machine::new(&program);
    let trace = match m.run(&program, fuel) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("braidsim: functional run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}: {} dynamic instructions", program.name, trace.len());

    let perfect = |mut c: braid::core::config::CommonConfig| {
        if opts.perfect {
            c = c.perfect();
        }
        c
    };
    let want = |name: &str| core == name || core == "all";

    if want("ooo") {
        let mut cfg = OooConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        if !report_result("out-of-order", OooCore::new(cfg).run(&program, &trace)) {
            return ExitCode::FAILURE;
        }
    }
    if want("dep") {
        let mut cfg = DepConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        if !report_result("dependence-steering", DepSteerCore::new(cfg).run(&program, &trace)) {
            return ExitCode::FAILURE;
        }
    }
    if want("inorder") {
        let mut cfg = InOrderConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        if !report_result("in-order", InOrderCore::new(cfg).run(&program, &trace)) {
            return ExitCode::FAILURE;
        }
    }
    if want("braid") {
        let t = match translate(&program, &TranslatorConfig::default()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("braidsim: translation failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut mb = Machine::new(&t.program);
        let braid_trace = match mb.run(&t.program, fuel) {
            Ok(tr) => tr,
            Err(e) => {
                eprintln!("braidsim: braid functional run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut cfg = BraidConfig::paper_wide(opts.width);
        cfg.common = perfect(cfg.common);
        cfg.common.mispredict_penalty = 19;
        if !report_result("braid", BraidCore::new(cfg).run(&t.program, &braid_trace)) {
            return ExitCode::FAILURE;
        }
    }
    if !["ooo", "dep", "inorder", "braid", "all"].contains(&core) {
        return usage();
    }
    ExitCode::SUCCESS
}
