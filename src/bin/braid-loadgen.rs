//! `braid-loadgen` — deterministic traffic for a `braidd` daemon.
//!
//! ```text
//! braid-loadgen --addr HOST:PORT [--connections N] [--requests N]
//!               [--seed N] [--timeout-ms N] [--attempts N]
//!               [--percentile P] [--json] [--verify] [--shutdown]
//!               [--version]
//! ```
//!
//! Generates a seeded mix of `simulate`, `sweep-point`, `translate`, and
//! `check` requests, drives them over `--connections` concurrent sockets,
//! and reports throughput, error, and cache statistics. With `--verify`
//! the identical mix is replayed on a single connection and the response
//! bytes must match the concurrent run's — a live determinism check of
//! the whole service. With `--shutdown` the daemon is drained and stopped
//! afterwards.
//!
//! Every connection is a resilient client: backpressure (`retry`)
//! responses are resent after the server's hint, and transport faults —
//! torn frames, dropped connections, responses lost to chaos injection —
//! are absorbed by reconnect-and-replay with seeded bounded backoff.
//! `--timeout-ms` bounds each request's wall-clock budget across all
//! attempts and `--attempts` bounds how many transport faults a single
//! request may survive. Because recovery is part of the client, `--verify`
//! holds even against a daemon running under `--chaos`.
//!
//! The report includes client-observed latency (merged across all
//! connections of the concurrent phase): p50/p95/p99 overall and per
//! request kind. `--percentile P` (0 < P ≤ 100, fractions allowed) adds
//! one extra quantile line; `--json` replaces the text report with one
//! machine-readable JSON document on stdout — the format consumed by
//! `scripts/bench_serve.sh`.
//!
//! Exits nonzero on usage errors, transport failures, lost requests, or a
//! verification mismatch.

use std::process::ExitCode;

use braid::serve::{run_loadgen, LoadgenConfig};
use braid::uarch::Histogram;

fn usage() -> ExitCode {
    eprintln!(
        "usage: braid-loadgen --addr HOST:PORT [--connections N] [--requests N]\n       \
         [--seed N] [--timeout-ms N] [--attempts N] [--percentile P] [--json]\n       \
         [--verify] [--shutdown] [--version]\n\
         exit codes: 0 clean, 1 lost requests/failure, 2 usage error"
    );
    ExitCode::from(2)
}

/// One text-report latency line: `label: p50 A p95 B p99 C max D (N reqs)`.
fn latency_line(label: &str, h: &Histogram) {
    let p = |q| h.percentile_checked(q).unwrap_or(0);
    println!(
        "{label}: p50 {}us p95 {}us p99 {}us max {}us ({} reqs)",
        p(0.50),
        p(0.95),
        p(0.99),
        h.max().unwrap_or(0),
        h.total()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("braid-loadgen {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let mut cfg = LoadgenConfig { verify: false, ..LoadgenConfig::default() };
    let mut json_out = false;
    let mut extra_percentile: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--verify" => {
                cfg.verify = true;
                i += 1;
                continue;
            }
            "--shutdown" => {
                cfg.shutdown = true;
                i += 1;
                continue;
            }
            "--json" => {
                json_out = true;
                i += 1;
                continue;
            }
            flag => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("braid-loadgen: {flag} needs a value");
                    return usage();
                };
                match (flag, value.parse::<u64>()) {
                    ("--addr", _) => cfg.addr = value.clone(),
                    ("--connections", Ok(n)) => cfg.connections = n as usize,
                    ("--requests", Ok(n)) => cfg.requests = n as usize,
                    ("--seed", Ok(n)) => cfg.seed = n,
                    ("--timeout-ms", Ok(n)) => cfg.timeout_ms = n,
                    ("--attempts", Ok(n)) => cfg.max_attempts = n as u32,
                    ("--percentile", _) => {
                        // Validated here, at the CLI boundary: the
                        // histogram's checked accessor would just return
                        // None, which a user would misread as "no data".
                        match value.parse::<f64>() {
                            Ok(p) if p > 0.0 && p <= 100.0 => extra_percentile = Some(p),
                            _ => {
                                eprintln!(
                                    "braid-loadgen: --percentile needs a number in (0, 100], \
                                     got {value:?}"
                                );
                                return usage();
                            }
                        }
                    }
                    (_, Err(_))
                        if ["--connections", "--requests", "--seed", "--timeout-ms", "--attempts"]
                            .contains(&flag) =>
                    {
                        eprintln!(
                            "braid-loadgen: {flag} needs a non-negative integer, got {value:?}"
                        );
                        return usage();
                    }
                    _ => {
                        eprintln!("braid-loadgen: unknown option {flag}");
                        return usage();
                    }
                }
                i += 2;
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("braid-loadgen: --addr is required");
        return usage();
    }

    let report = match run_loadgen(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("braid-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json_out {
        println!("{}", report.to_json().compact());
        return ExitCode::SUCCESS;
    }
    println!(
        "sent {} requests over {} connections (seed {}): {} ok, {} errors, {} retries",
        report.sent, cfg.connections, cfg.seed, report.ok, report.errors, report.retries
    );
    if report.replays > 0 || report.reconnects > 0 {
        println!(
            "resilience: {} replays after transport faults, {} reconnects",
            report.replays, report.reconnects
        );
    }
    println!("response digest {}", report.digest);
    if let Some(replay) = &report.replay_digest {
        println!("replay digest   {replay} — responses byte-identical, service is deterministic");
    }
    println!("server cache: {} hits, {} misses", report.cache_hits, report.cache_misses);
    if report.disk_hits > 0 || report.quarantined > 0 {
        println!(
            "disk tier: {} hits, {} entries quarantined",
            report.disk_hits, report.quarantined
        );
    }
    latency_line("latency", &report.latency);
    for (kind, h) in &report.by_class {
        latency_line(&format!("latency[{kind}]"), h);
    }
    if let Some(p) = extra_percentile {
        println!(
            "latency p{p}: {}us",
            report.latency.percentile_checked(p / 100.0).unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}
