//! `braid-loadgen` — deterministic traffic for a `braidd` daemon.
//!
//! ```text
//! braid-loadgen --addr HOST:PORT [--connections N] [--requests N]
//!               [--seed N] [--timeout-ms N] [--attempts N]
//!               [--verify] [--shutdown] [--version]
//! ```
//!
//! Generates a seeded mix of `simulate`, `sweep-point`, `translate`, and
//! `check` requests, drives them over `--connections` concurrent sockets,
//! and reports throughput, error, and cache statistics. With `--verify`
//! the identical mix is replayed on a single connection and the response
//! bytes must match the concurrent run's — a live determinism check of
//! the whole service. With `--shutdown` the daemon is drained and stopped
//! afterwards.
//!
//! Every connection is a resilient client: backpressure (`retry`)
//! responses are resent after the server's hint, and transport faults —
//! torn frames, dropped connections, responses lost to chaos injection —
//! are absorbed by reconnect-and-replay with seeded bounded backoff.
//! `--timeout-ms` bounds each request's wall-clock budget across all
//! attempts and `--attempts` bounds how many transport faults a single
//! request may survive. Because recovery is part of the client, `--verify`
//! holds even against a daemon running under `--chaos`.
//!
//! Exits nonzero on usage errors, transport failures, lost requests, or a
//! verification mismatch.

use std::process::ExitCode;

use braid::serve::{run_loadgen, LoadgenConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: braid-loadgen --addr HOST:PORT [--connections N] [--requests N]\n       \
         [--seed N] [--timeout-ms N] [--attempts N] [--verify] [--shutdown] [--version]\n\
         exit codes: 0 clean, 1 lost requests/failure, 2 usage error"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("braid-loadgen {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let mut cfg = LoadgenConfig { verify: false, ..LoadgenConfig::default() };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--verify" => {
                cfg.verify = true;
                i += 1;
                continue;
            }
            "--shutdown" => {
                cfg.shutdown = true;
                i += 1;
                continue;
            }
            flag => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("braid-loadgen: {flag} needs a value");
                    return usage();
                };
                match (flag, value.parse::<u64>()) {
                    ("--addr", _) => cfg.addr = value.clone(),
                    ("--connections", Ok(n)) => cfg.connections = n as usize,
                    ("--requests", Ok(n)) => cfg.requests = n as usize,
                    ("--seed", Ok(n)) => cfg.seed = n,
                    ("--timeout-ms", Ok(n)) => cfg.timeout_ms = n,
                    ("--attempts", Ok(n)) => cfg.max_attempts = n as u32,
                    (_, Err(_))
                        if ["--connections", "--requests", "--seed", "--timeout-ms", "--attempts"]
                            .contains(&flag) =>
                    {
                        eprintln!(
                            "braid-loadgen: {flag} needs a non-negative integer, got {value:?}"
                        );
                        return usage();
                    }
                    _ => {
                        eprintln!("braid-loadgen: unknown option {flag}");
                        return usage();
                    }
                }
                i += 2;
            }
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("braid-loadgen: --addr is required");
        return usage();
    }

    let report = match run_loadgen(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("braid-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sent {} requests over {} connections (seed {}): {} ok, {} errors, {} retries",
        report.sent, cfg.connections, cfg.seed, report.ok, report.errors, report.retries
    );
    if report.replays > 0 || report.reconnects > 0 {
        println!(
            "resilience: {} replays after transport faults, {} reconnects",
            report.replays, report.reconnects
        );
    }
    println!("response digest {}", report.digest);
    if let Some(replay) = &report.replay_digest {
        println!("replay digest   {replay} — responses byte-identical, service is deterministic");
    }
    println!("server cache: {} hits, {} misses", report.cache_hits, report.cache_misses);
    if report.disk_hits > 0 || report.quarantined > 0 {
        println!(
            "disk tier: {} hits, {} entries quarantined",
            report.disk_hits, report.quarantined
        );
    }
    ExitCode::SUCCESS
}
