//! `braidc` — the braid binary-translation tool.
//!
//! ```text
//! braidc translate <prog>         annotate + reorder, print braid assembly
//! braidc inspect   <prog>         print braids with S/T/I/E bits and stats
//! braidc encode    <prog>         print the 64-bit encodings
//! braidc stats     <prog>         print Tables 1-3 statistics only
//! braidc check     <prog> [--json] [--deny-warnings]
//!                                 verify the braid contract statically
//! braidc dot|viz   <prog> [--check]
//!                                 Graphviz dataflow graph, braids colored;
//!                                 --check highlights diagnostic findings
//! braidc assemble  <file.s> <out.brisc>   write a binary container
//! ```
//!
//! `<prog>` is assembly, a `.brisc` binary, or `@name` for a workload from
//! the benchmark suite. Annotated inputs (any braid bits set) are checked
//! as-is; unannotated inputs are translated first and the full translation
//! (including reordering legality and descriptor metadata) is checked.

use std::fs;
use std::process::ExitCode;

use braid::check::{CheckConfig, CheckReport};
use braid::compiler::{translate, TranslatorConfig};
use braid::isa::asm::{assemble, disassemble};
use braid::isa::encode;
use braid::isa::Program;

fn usage() -> ExitCode {
    eprintln!(
        "usage: braidc <translate|inspect|encode|stats> <prog>\n       \
         braidc check <prog> [--json] [--deny-warnings]\n       \
         braidc dot|viz <prog> [--check]\n       \
         braidc assemble <file.s> <out.brisc>\n       \
         (<prog> = file.s | file.brisc | @benchmark)"
    );
    ExitCode::from(2)
}

fn load(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix('@') {
        let w = braid::workloads::by_name_any(name, 1.0)
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        Ok(w.program)
    } else if spec.ends_with(".brisc") {
        let bytes = fs::read(spec).map_err(|e| format!("{spec}: {e}"))?;
        braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{spec}: {e}"))
    } else {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        assemble(&source).map_err(|e| format!("{spec}: {e}"))
    }
}

/// Whether any braid annotation deviates from the unannotated default —
/// i.e. the program has already been translated (or hand-annotated).
fn is_annotated(p: &Program) -> bool {
    p.insts
        .iter()
        .any(|i| !i.braid.start || i.braid.t[0] || i.braid.t[1] || i.braid.internal)
}

/// Checks `program`: annotated inputs directly, unannotated inputs through
/// the translator (checking the full translation against the input).
/// Returns the report and the program the report's spans refer to.
fn check_any(program: &Program) -> Result<(CheckReport, Program), String> {
    if is_annotated(program) {
        Ok((braid::check::check_program(program, &CheckConfig::default()), program.clone()))
    } else {
        let t = translate(program, &TranslatorConfig { self_check: false, ..Default::default() })
            .map_err(|e| format!("translation failed: {e}"))?;
        let report = t.check(program, &CheckConfig::default());
        Ok((report, t.program))
    }
}

fn main() -> ExitCode {
    let all: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> =
        all.iter().filter(|a| a.starts_with("--")).map(String::as_str).collect();
    let args: Vec<&String> = all.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(unknown) =
        flags.iter().find(|f| !["--json", "--deny-warnings", "--check"].contains(*f))
    {
        eprintln!("braidc: unknown option {unknown}");
        return usage();
    }

    if args.len() == 3 && args[0] == "assemble" {
        let program = match load(args[1]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bytes = match braid::isa::container::to_bytes(&program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(args[2], bytes) {
            eprintln!("braidc: {}: {e}", args[2]);
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} instructions)", args[2], program.len());
        return ExitCode::SUCCESS;
    }
    let [cmd, path] = args.as_slice() else { return usage() };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("braidc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "translate" | "inspect" | "stats" => {
            let t = match translate(&program, &TranslatorConfig::default()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("braidc: translation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "translate" => print!("{}", disassemble(&t.program)),
                "stats" => println!("{}", t.stats),
                _ => {
                    println!("{} braids over {} instructions", t.braids.len(), t.program.len());
                    println!("{}\n", t.stats);
                    for (i, d) in t.braids.iter().enumerate() {
                        println!("braid {i} (block {}, {} insts, {} internals):", d.block, d.len, d.internals);
                        for idx in d.start..d.start + d.len {
                            let inst = &t.program.insts[idx as usize];
                            let b = inst.braid;
                            println!(
                                "  {:>5}  {}{}{}{}{}  {}",
                                idx,
                                if b.start { 'S' } else { '.' },
                                if b.t[0] { 'T' } else { '.' },
                                if b.t[1] { 'T' } else { '.' },
                                if b.internal { 'I' } else { '.' },
                                if b.external { 'E' } else { '.' },
                                inst
                            );
                        }
                    }
                }
            }
        }
        "check" => {
            let (report, _) = match check_any(&program) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("braidc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if flags.contains(&"--json") {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if report.has_errors() || (flags.contains(&"--deny-warnings") && !report.is_clean()) {
                return ExitCode::FAILURE;
            }
        }
        "dot" | "viz" => {
            let config = TranslatorConfig::default();
            if flags.contains(&"--check") {
                let (report, target) = match check_any(&program) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("braidc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let marks: Vec<(u32, String)> = report
                    .diagnostics
                    .iter()
                    .map(|d| (d.span.start, d.code.to_string()))
                    .collect();
                print!("{}", braid::compiler::viz::program_to_dot_highlight(&target, &config, &marks));
                if report.has_errors() {
                    eprintln!("{report}");
                }
            } else {
                print!("{}", braid::compiler::viz::program_to_dot(&program, &config));
            }
        }
        "encode" => {
            for (i, inst) in program.insts.iter().enumerate() {
                match encode(inst) {
                    Ok(w) => println!("{i:>5}  {w}  {inst}"),
                    Err(e) => {
                        eprintln!("braidc: instruction {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
