//! `braidc` — the braid binary-translation tool.
//!
//! ```text
//! braidc translate <prog>         annotate + reorder, print braid assembly
//! braidc inspect   <prog>         print braids with S/T/I/E bits and stats
//! braidc encode    <prog>         print the 64-bit encodings
//! braidc stats     <prog>         print Tables 1-3 statistics only
//! braidc check     <prog> [--json] [--deny-warnings]
//!                                 verify the braid contract statically
//! braidc dot|viz   <prog> [--check] [--metrics <file.json>]
//!                                 Graphviz dataflow graph, braids colored;
//!                                 --check highlights diagnostic findings,
//!                                 --metrics annotates nodes with hotspot
//!                                 stall cycles from a `braidsim --metrics`
//!                                 export
//! braidc assemble  <file.s> <out.brisc>   write a binary container
//! ```
//!
//! `<prog>` is assembly, a `.brisc` binary, or `@name` for a workload from
//! the benchmark suite. Annotated inputs (any braid bits set) are checked
//! as-is; unannotated inputs are translated first and the full translation
//! (including reordering legality and descriptor metadata) is checked.

use std::fs;
use std::process::ExitCode;

use braid::check::{CheckConfig, CheckReport};
use braid::compiler::{translate, TranslatorConfig};
use braid::isa::asm::{assemble, disassemble};
use braid::isa::encode;
use braid::isa::Program;

fn usage() -> ExitCode {
    eprintln!(
        "usage: braidc <translate|inspect|encode|stats> <prog>\n       \
         braidc check <prog> [--json] [--deny-warnings]\n       \
         braidc dot|viz <prog> [--check] [--metrics <file.json>]\n       \
         braidc assemble <file.s> <out.brisc>\n       \
         (<prog> = file.s | file.brisc | @benchmark)"
    );
    ExitCode::from(2)
}

fn load(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix('@') {
        let w = braid::workloads::by_name_any(name, 1.0)
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        Ok(w.program)
    } else if spec.ends_with(".brisc") {
        let bytes = fs::read(spec).map_err(|e| format!("{spec}: {e}"))?;
        braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{spec}: {e}"))
    } else {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        assemble(&source).map_err(|e| format!("{spec}: {e}"))
    }
}

/// Whether any braid annotation deviates from the unannotated default —
/// i.e. the program has already been translated (or hand-annotated).
fn is_annotated(p: &Program) -> bool {
    p.insts
        .iter()
        .any(|i| !i.braid.start || i.braid.t[0] || i.braid.t[1] || i.braid.internal)
}

/// Checks `program`: annotated inputs directly, unannotated inputs through
/// the translator (checking the full translation against the input).
/// Returns the report and the program the report's spans refer to.
fn check_any(program: &Program) -> Result<(CheckReport, Program), String> {
    if is_annotated(program) {
        Ok((braid::check::check_program(program, &CheckConfig::default()), program.clone()))
    } else {
        let t = translate(program, &TranslatorConfig { self_check: false, ..Default::default() })
            .map_err(|e| format!("translation failed: {e}"))?;
        let report = t.check(program, &CheckConfig::default());
        Ok((report, t.program))
    }
}

/// Reads a `braidsim --metrics` export: the core it ran on and the
/// hotspot marks (`idx` → "N cyc") for dataflow-graph annotation.
fn load_hotspots(path: &str) -> Result<(String, Vec<(u32, String)>), String> {
    use braid::sweep::Json;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = braid::sweep::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let core = doc.get("core").and_then(Json::as_str).unwrap_or("").to_string();
    let arr = doc
        .get("hotspots")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no `hotspots` array (not a --metrics export?)"))?;
    let marks = arr
        .iter()
        .filter_map(|h| {
            let idx = h.get("idx").and_then(Json::as_u64)?;
            let cycles = h.get("head_stall_cycles").and_then(Json::as_u64)?;
            Some((idx as u32, format!("{cycles} cyc")))
        })
        .collect();
    Ok((core, marks))
}

fn main() -> ExitCode {
    let mut all: Vec<String> = std::env::args().skip(1).collect();
    if all.iter().any(|a| a == "--version") {
        println!("braidc {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    // `--metrics` takes a value; pull the pair out before the boolean-flag
    // scan below.
    let mut metrics_path: Option<String> = None;
    if let Some(i) = all.iter().position(|a| a == "--metrics") {
        if i + 1 >= all.len() {
            eprintln!("braidc: --metrics needs a file");
            return usage();
        }
        metrics_path = Some(all.remove(i + 1));
        all.remove(i);
    }
    let flags: Vec<&str> =
        all.iter().filter(|a| a.starts_with("--")).map(String::as_str).collect();
    let args: Vec<&String> = all.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(unknown) =
        flags.iter().find(|f| !["--json", "--deny-warnings", "--check"].contains(*f))
    {
        eprintln!("braidc: unknown option {unknown}");
        return usage();
    }

    if args.len() == 3 && args[0] == "assemble" {
        let program = match load(args[1]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bytes = match braid::isa::container::to_bytes(&program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(args[2], bytes) {
            eprintln!("braidc: {}: {e}", args[2]);
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} instructions)", args[2], program.len());
        return ExitCode::SUCCESS;
    }
    let [cmd, path] = args.as_slice() else { return usage() };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("braidc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "translate" | "inspect" | "stats" => {
            let t = match translate(&program, &TranslatorConfig::default()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("braidc: translation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "translate" => print!("{}", disassemble(&t.program)),
                "stats" => println!("{}", t.stats),
                _ => {
                    println!("{} braids over {} instructions", t.braids.len(), t.program.len());
                    println!("{}\n", t.stats);
                    for (i, d) in t.braids.iter().enumerate() {
                        println!("braid {i} (block {}, {} insts, {} internals):", d.block, d.len, d.internals);
                        for idx in d.start..d.start + d.len {
                            let inst = &t.program.insts[idx as usize];
                            let b = inst.braid;
                            println!(
                                "  {:>5}  {}{}{}{}{}  {}",
                                idx,
                                if b.start { 'S' } else { '.' },
                                if b.t[0] { 'T' } else { '.' },
                                if b.t[1] { 'T' } else { '.' },
                                if b.internal { 'I' } else { '.' },
                                if b.external { 'E' } else { '.' },
                                inst
                            );
                        }
                    }
                }
            }
        }
        "check" => {
            let (report, _) = match check_any(&program) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("braidc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if flags.contains(&"--json") {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if report.has_errors() || (flags.contains(&"--deny-warnings") && !report.is_clean()) {
                return ExitCode::FAILURE;
            }
        }
        "dot" | "viz" => {
            let config = TranslatorConfig::default();
            let mut marks: Vec<(u32, String)> = Vec::new();
            let mut target = program.clone();
            let mut errors = None;
            if flags.contains(&"--check") {
                let (report, checked) = match check_any(&program) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("braidc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                marks.extend(
                    report.diagnostics.iter().map(|d| (d.span.start, d.code.to_string())),
                );
                target = checked;
                if report.has_errors() {
                    errors = Some(report);
                }
            }
            if let Some(mpath) = &metrics_path {
                let (core, hot) = match load_hotspots(mpath) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("braidc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                // Braid-machine hotspot indices refer to the *translated*
                // program; mirror the run's translation so they line up.
                if core == "braid" && !is_annotated(&target) {
                    target = match translate(&target, &TranslatorConfig::default()) {
                        Ok(t) => t.program,
                        Err(e) => {
                            eprintln!("braidc: translation failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
                marks.extend(hot);
            }
            if marks.is_empty() && metrics_path.is_none() && !flags.contains(&"--check") {
                print!("{}", braid::compiler::viz::program_to_dot(&program, &config));
            } else {
                print!(
                    "{}",
                    braid::compiler::viz::program_to_dot_highlight(&target, &config, &marks)
                );
            }
            if let Some(report) = errors {
                eprintln!("{report}");
            }
        }
        "encode" => {
            for (i, inst) in program.insts.iter().enumerate() {
                match encode(inst) {
                    Ok(w) => println!("{i:>5}  {w}  {inst}"),
                    Err(e) => {
                        eprintln!("braidc: instruction {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
