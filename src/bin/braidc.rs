//! `braidc` — the braid binary-translation tool.
//!
//! ```text
//! braidc translate <prog>         annotate + reorder, print braid assembly
//! braidc inspect   <prog>         print braids with S/T/I/E bits and stats
//! braidc encode    <prog>         print the 64-bit encodings
//! braidc stats     <prog>         print Tables 1-3 statistics only
//! braidc check     <prog> [--json] [--deny-warnings]
//!                                 verify the braid contract statically
//! braidc bound     <prog> [--json] [--verify] [--deny-warnings]
//!                                 static cycle lower bounds + PB findings
//!                                 per core; --verify simulates each core
//!                                 and confirms bound <= cycles
//! braidc -O        <prog> [--json] [--emit <file>]
//!                                 search alternative braid partitions,
//!                                 confirm by simulation, report the winner
//! braidc dot|viz   <prog> [--check] [--metrics <file.json>]
//!                                 Graphviz dataflow graph, braids colored;
//!                                 --check highlights diagnostic findings,
//!                                 --metrics annotates nodes with hotspot
//!                                 stall cycles from a `braidsim --metrics`
//!                                 export
//! braidc assemble  <file.s> <out.brisc>   write a binary container
//! braidc build     <file.bl> [--emit <out.brisc>] [--json] [--deny-warnings]
//!                                 compile braid-lang source, run the braid
//!                                 translator over it, and write an
//!                                 annotated container that passes
//!                                 `braid-check` clean by construction
//! ```
//!
//! `<prog>` is assembly, a `.brisc` binary, braid-lang source (`.bl`), or
//! `@name` for a workload from the benchmark suite (including the
//! compiled `ln_*` loop-nest family). Annotated inputs (any braid bits
//! set) are checked as-is; unannotated inputs are translated first and
//! the full translation (including reordering legality and descriptor
//! metadata) is checked.
//!
//! Exit codes (shared by all braid binaries): `0` clean, `1` findings or
//! failure, `2` usage error.

use std::fs;
use std::process::ExitCode;

use braid::check::{CheckConfig, CheckReport};
use braid::compiler::{translate, TranslatorConfig};
use braid::isa::asm::{assemble, disassemble};
use braid::isa::encode;
use braid::isa::Program;

fn usage() -> ExitCode {
    eprintln!(
        "usage: braidc <translate|inspect|encode|stats> <prog>\n       \
         braidc check <prog> [--json] [--deny-warnings]\n       \
         braidc bound <prog> [--json] [--verify] [--deny-warnings]\n       \
         braidc -O <prog> [--json] [--emit <file>]\n       \
         braidc dot|viz <prog> [--check] [--metrics <file.json>]\n       \
         braidc assemble <file.s> <out.brisc>\n       \
         braidc build <file.bl> [--emit <out.brisc>] [--json] [--deny-warnings]\n       \
         (<prog> = file.s | file.brisc | file.bl | @benchmark)\n\
         exit codes: 0 clean, 1 findings/failure, 2 usage error"
    );
    ExitCode::from(2)
}

fn load(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix('@') {
        let w = braid::workloads::by_name_any(name, 1.0)
            .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
        Ok(w.program)
    } else if spec.ends_with(".brisc") {
        let bytes = fs::read(spec).map_err(|e| format!("{spec}: {e}"))?;
        braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{spec}: {e}"))
    } else if spec.ends_with(".bl") {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        let out = braid::lang::compile(bl_name(spec), &source)
            .map_err(|r| format!("{spec}:\n{}", r.render_with_source(&source)))?;
        Ok(out.program)
    } else {
        let source = fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
        assemble(&source).map_err(|e| format!("{spec}: {e}"))
    }
}

/// Program name for a braid-lang source path: the file stem.
fn bl_name(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
}

/// The `build` subcommand: braid-lang source → annotated `.brisc`
/// container that passes `braid-check` clean by construction.
fn run_build(path: &str, flags: &[&str], emit_path: Option<&str>) -> ExitCode {
    let source = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("braidc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match braid::lang::compile_annotated(bl_name(path), &source) {
        Ok(out) => out,
        Err(report) => {
            if flags.contains(&"--json") {
                println!("{}", report.to_json());
            } else {
                eprint!("{}", report.render_with_source(&source));
            }
            return ExitCode::FAILURE;
        }
    };
    if flags.contains(&"--json") {
        println!("{}", out.report.to_json());
    } else if !out.report.is_clean() {
        eprintln!("{}", out.report.render_with_source(&source));
    }
    let check = braid::check::check_program(&out.program, &CheckConfig::default());
    if check.has_errors() {
        // compile_annotated re-checks the translation, so this cannot
        // fire; belt-and-braces for the "clean by construction" contract.
        eprintln!("braidc: internal error: built container is not check-clean:\n{check}");
        return ExitCode::FAILURE;
    }
    if let Some(emit) = emit_path {
        let bytes = match braid::isa::container::to_bytes(&out.program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(emit, bytes) {
            eprintln!("braidc: {emit}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {emit} ({} instructions, check-clean)", out.program.len());
    } else {
        print!("{}", disassemble(&out.program));
    }
    if flags.contains(&"--deny-warnings") && !out.report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Whether any braid annotation deviates from the unannotated default —
/// i.e. the program has already been translated (or hand-annotated).
fn is_annotated(p: &Program) -> bool {
    p.insts
        .iter()
        .any(|i| !i.braid.start || i.braid.t[0] || i.braid.t[1] || i.braid.internal)
}

/// Checks `program`: annotated inputs directly, unannotated inputs through
/// the translator (checking the full translation against the input).
/// Returns the report and the program the report's spans refer to.
fn check_any(program: &Program) -> Result<(CheckReport, Program), String> {
    if is_annotated(program) {
        Ok((braid::check::check_program(program, &CheckConfig::default()), program.clone()))
    } else {
        let t = translate(program, &TranslatorConfig { self_check: false, ..Default::default() })
            .map_err(|e| format!("translation failed: {e}"))?;
        let report = t.check(program, &CheckConfig::default());
        Ok((report, t.program))
    }
}

/// Reads a `braidsim --metrics` export: the core it ran on and the
/// hotspot marks (`idx` → "N cyc") for dataflow-graph annotation.
fn load_hotspots(path: &str) -> Result<(String, Vec<(u32, String)>), String> {
    use braid::sweep::Json;
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = braid::sweep::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let core = doc.get("core").and_then(Json::as_str).unwrap_or("").to_string();
    let arr = doc
        .get("hotspots")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no `hotspots` array (not a --metrics export?)"))?;
    let marks = arr
        .iter()
        .filter_map(|h| {
            let idx = h.get("idx").and_then(Json::as_u64)?;
            let cycles = h.get("head_stall_cycles").and_then(Json::as_u64)?;
            Some((idx as u32, format!("{cycles} cyc")))
        })
        .collect();
    Ok((core, marks))
}

/// The paper's four core models at their default 8-wide configurations.
fn paper_cores() -> Vec<braid::core::CoreConfig> {
    use braid::core::CoreConfig;
    vec![
        CoreConfig::InOrder(braid::core::InOrderConfig::paper_8wide()),
        CoreConfig::Dep(braid::core::DepConfig::paper_8wide()),
        CoreConfig::Ooo(braid::core::OooConfig::paper_8wide()),
        CoreConfig::Braid(braid::core::BraidConfig::paper_default()),
    ]
}

fn main() -> ExitCode {
    let mut all: Vec<String> = std::env::args().skip(1).collect();
    if all.iter().any(|a| a == "--version") {
        println!("braidc {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    // `--metrics` takes a value; pull the pair out before the boolean-flag
    // scan below.
    let mut metrics_path: Option<String> = None;
    if let Some(i) = all.iter().position(|a| a == "--metrics") {
        if i + 1 >= all.len() {
            eprintln!("braidc: --metrics needs a file");
            return usage();
        }
        metrics_path = Some(all.remove(i + 1));
        all.remove(i);
    }
    let mut emit_path: Option<String> = None;
    if let Some(i) = all.iter().position(|a| a == "--emit") {
        if i + 1 >= all.len() {
            eprintln!("braidc: --emit needs a file");
            return usage();
        }
        emit_path = Some(all.remove(i + 1));
        all.remove(i);
    }
    let flags: Vec<&str> =
        all.iter().filter(|a| a.starts_with("--")).map(String::as_str).collect();
    let args: Vec<&String> = all.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(unknown) = flags
        .iter()
        .find(|f| !["--json", "--deny-warnings", "--check", "--verify"].contains(*f))
    {
        eprintln!("braidc: unknown option {unknown}");
        return usage();
    }

    if args.len() == 3 && args[0] == "assemble" {
        let program = match load(args[1]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bytes = match braid::isa::container::to_bytes(&program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(args[2], bytes) {
            eprintln!("braidc: {}: {e}", args[2]);
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} instructions)", args[2], program.len());
        return ExitCode::SUCCESS;
    }
    if args.len() == 2 && args[0] == "build" {
        return run_build(args[1], &flags, emit_path.as_deref());
    }
    let [cmd, path] = args.as_slice() else { return usage() };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("braidc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "translate" | "inspect" | "stats" => {
            let t = match translate(&program, &TranslatorConfig::default()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("braidc: translation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "translate" => print!("{}", disassemble(&t.program)),
                "stats" => println!("{}", t.stats),
                _ => {
                    println!("{} braids over {} instructions", t.braids.len(), t.program.len());
                    println!("{}\n", t.stats);
                    for (i, d) in t.braids.iter().enumerate() {
                        println!("braid {i} (block {}, {} insts, {} internals):", d.block, d.len, d.internals);
                        for idx in d.start..d.start + d.len {
                            let inst = &t.program.insts[idx as usize];
                            let b = inst.braid;
                            println!(
                                "  {:>5}  {}{}{}{}{}  {}",
                                idx,
                                if b.start { 'S' } else { '.' },
                                if b.t[0] { 'T' } else { '.' },
                                if b.t[1] { 'T' } else { '.' },
                                if b.internal { 'I' } else { '.' },
                                if b.external { 'E' } else { '.' },
                                inst
                            );
                        }
                    }
                }
            }
        }
        "bound" => {
            use braid::analyze::{analyze, AnalyzeConfig};
            use braid::core::{run_tier, SamplingConfig, Tier, TierReport};
            let cores = paper_cores();
            let config = AnalyzeConfig::default();
            let report = match analyze(&program, &cores, &config) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("braidc: analysis failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if flags.contains(&"--json") {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if flags.contains(&"--verify") {
                // Soundness check: simulate each core at the full tier and
                // confirm predicted <= simulated. The braid core's bound is
                // taken over the same canonical translation run_tier vets.
                let sampling = SamplingConfig::default();
                for core in &cores {
                    let sim = if core.is_braid() && braid::analyze::is_annotated(&program) {
                        braid::core::run_annotated(&program, core, config.fuel).map(|r| r.cycles)
                    } else {
                        run_tier(&program, core, Tier::Full, config.fuel, &sampling).map(|r| {
                            match r {
                                TierReport::Full(r) => r.cycles,
                                _ => unreachable!("full tier returns a full report"),
                            }
                        })
                    };
                    let cycles = match sim {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("braidc: {} simulation failed: {e}", core.name());
                            return ExitCode::FAILURE;
                        }
                    };
                    let bound = report
                        .bounds
                        .iter()
                        .find(|b| b.core == core.name())
                        .map(|b| b.cycles())
                        .unwrap_or(0);
                    if bound > cycles {
                        eprintln!(
                            "braidc: UNSOUND: {} bound {bound} > simulated {cycles}",
                            core.name()
                        );
                        return ExitCode::FAILURE;
                    }
                    println!("{}: sound ({bound} <= {cycles})", core.name());
                }
            }
            if flags.contains(&"--deny-warnings") && report.warnings() > 0 {
                return ExitCode::FAILURE;
            }
        }
        "-O" => {
            use braid::analyze::{search, SearchConfig};
            let out = match search(&program, &braid::core::BraidConfig::paper_default(), &SearchConfig::default())
            {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("braidc: partition search failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if flags.contains(&"--json") {
                let mut s = String::from("{\"candidates\":[");
                for (i, c) in out.candidates.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str("{\"name\":");
                    braid::check::json_string(&mut s, &c.name);
                    s.push_str(&format!(
                        ",\"score\":{},\"check_clean\":{},\"cycles\":{}}}",
                        c.static_score,
                        c.check_clean,
                        c.simulated_cycles.map_or("null".to_string(), |v| v.to_string()),
                    ));
                }
                s.push_str("],\"winner\":");
                braid::check::json_string(&mut s, &out.winner().name);
                s.push_str(&format!(
                    ",\"canonical_cycles\":{},\"bound_cycles\":{},\"recovered\":{}}}",
                    out.canonical_cycles,
                    out.bound_cycles,
                    out.cycles_recovered(),
                ));
                println!("{s}");
            } else {
                println!("{:<14} {:>8} {:>6} {:>10}", "candidate", "score", "check", "cycles");
                for c in &out.candidates {
                    println!(
                        "{:<14} {:>8} {:>6} {:>10}",
                        c.name,
                        c.static_score,
                        if c.check_clean { "ok" } else { "FAIL" },
                        c.simulated_cycles.map_or("-".to_string(), |v| v.to_string()),
                    );
                }
                println!(
                    "winner: {} ({} cycles, canonical {}, bound {}, recovered {})",
                    out.winner().name,
                    out.winner().simulated_cycles.unwrap_or(0),
                    out.canonical_cycles,
                    out.bound_cycles,
                    out.cycles_recovered(),
                );
            }
            if let Some(path) = &emit_path {
                // Assembly text drops braid annotations; emit the binary
                // container (which keeps them) for `.brisc` paths.
                let winner_prog = &out.winner().translation.program;
                let write_result = if path.ends_with(".brisc") {
                    match braid::isa::container::to_bytes(winner_prog) {
                        Ok(bytes) => fs::write(path, bytes),
                        Err(e) => {
                            eprintln!("braidc: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    fs::write(path, disassemble(winner_prog))
                };
                if let Err(e) = write_result {
                    eprintln!("braidc: {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path} ({})", out.winner().name);
            }
        }
        "check" => {
            let (report, _) = match check_any(&program) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("braidc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if flags.contains(&"--json") {
                println!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if report.has_errors() || (flags.contains(&"--deny-warnings") && !report.is_clean()) {
                return ExitCode::FAILURE;
            }
        }
        "dot" | "viz" => {
            let config = TranslatorConfig::default();
            let mut marks: Vec<(u32, String)> = Vec::new();
            let mut target = program.clone();
            let mut errors = None;
            if flags.contains(&"--check") {
                let (report, checked) = match check_any(&program) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("braidc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                marks.extend(
                    report.diagnostics.iter().map(|d| (d.span.start, d.code.to_string())),
                );
                target = checked;
                if report.has_errors() {
                    errors = Some(report);
                }
            }
            if let Some(mpath) = &metrics_path {
                let (core, hot) = match load_hotspots(mpath) {
                    Ok(x) => x,
                    Err(e) => {
                        eprintln!("braidc: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                // Braid-machine hotspot indices refer to the *translated*
                // program; mirror the run's translation so they line up.
                if core == "braid" && !is_annotated(&target) {
                    target = match translate(&target, &TranslatorConfig::default()) {
                        Ok(t) => t.program,
                        Err(e) => {
                            eprintln!("braidc: translation failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                }
                marks.extend(hot);
            }
            if marks.is_empty() && metrics_path.is_none() && !flags.contains(&"--check") {
                print!("{}", braid::compiler::viz::program_to_dot(&program, &config));
            } else {
                print!(
                    "{}",
                    braid::compiler::viz::program_to_dot_highlight(&target, &config, &marks)
                );
            }
            if let Some(report) = errors {
                eprintln!("{report}");
            }
        }
        "encode" => {
            for (i, inst) in program.insts.iter().enumerate() {
                match encode(inst) {
                    Ok(w) => println!("{i:>5}  {w}  {inst}"),
                    Err(e) => {
                        eprintln!("braidc: instruction {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
