//! `braidc` — the braid binary-translation tool.
//!
//! ```text
//! braidc translate <file.s>       annotate + reorder, print braid assembly
//! braidc inspect   <file.s>       print braids with S/T/I/E bits and stats
//! braidc encode    <file.s>       print the 64-bit encodings
//! braidc stats     <file.s>       print Tables 1-3 statistics only
//! braidc dot       <file.s>       Graphviz dataflow graph, braids colored
//! braidc assemble  <file.s> <out.brisc>   write a binary container
//! ```
//!
//! Every command also accepts a `.brisc` binary in place of assembly.

use std::fs;
use std::process::ExitCode;

use braid::compiler::{translate, TranslatorConfig};
use braid::isa::asm::{assemble, disassemble};
use braid::isa::encode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: braidc <translate|inspect|encode|stats|dot> <file.s|file.brisc>\n       braidc assemble <file.s> <out.brisc>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<braid::isa::Program, String> {
    if path.ends_with(".brisc") {
        let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        braid::isa::container::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        let source = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        assemble(&source).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 3 && args[0] == "assemble" {
        let program = match load(&args[1]) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bytes = match braid::isa::container::to_bytes(&program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("braidc: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = fs::write(&args[2], bytes) {
            eprintln!("braidc: {}: {e}", args[2]);
            return ExitCode::FAILURE;
        }
        println!("wrote {} ({} instructions)", args[2], program.len());
        return ExitCode::SUCCESS;
    }
    let [cmd, path] = args.as_slice() else { return usage() };
    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("braidc: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "translate" | "inspect" | "stats" => {
            let t = match translate(&program, &TranslatorConfig::default()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("braidc: translation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "translate" => print!("{}", disassemble(&t.program)),
                "stats" => println!("{}", t.stats),
                _ => {
                    println!("{} braids over {} instructions", t.braids.len(), t.program.len());
                    println!("{}\n", t.stats);
                    for (i, d) in t.braids.iter().enumerate() {
                        println!("braid {i} (block {}, {} insts, {} internals):", d.block, d.len, d.internals);
                        for idx in d.start..d.start + d.len {
                            let inst = &t.program.insts[idx as usize];
                            let b = inst.braid;
                            println!(
                                "  {:>5}  {}{}{}{}{}  {}",
                                idx,
                                if b.start { 'S' } else { '.' },
                                if b.t[0] { 'T' } else { '.' },
                                if b.t[1] { 'T' } else { '.' },
                                if b.internal { 'I' } else { '.' },
                                if b.external { 'E' } else { '.' },
                                inst
                            );
                        }
                    }
                }
            }
        }
        "dot" => {
            print!("{}", braid::compiler::viz::program_to_dot(&program, &TranslatorConfig::default()));
        }
        "encode" => {
            for (i, inst) in program.insts.iter().enumerate() {
                match encode(inst) {
                    Ok(w) => println!("{i:>5}  {w}  {inst}"),
                    Err(e) => {
                        eprintln!("braidc: instruction {i}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
