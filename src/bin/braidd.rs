//! `braidd` — the braid simulation daemon.
//!
//! ```text
//! braidd [--addr HOST:PORT] [--threads N] [--queue-bound N]
//!        [--max-connections N] [--cache-capacity N]
//!        [--deadline-cycles N] [--cache-dir DIR]
//!        [--io-timeout-ms N] [--max-line-bytes N]
//!        [--chaos SPEC] [--trace-log FILE] [--version]
//! ```
//!
//! Listens for JSON-lines requests (`simulate`, `translate`, `check`,
//! `sweep-point`, `stats`, `metrics`, `shutdown` — see the `braid-serve`
//! crate docs for the grammar), dispatches them onto a shared
//! work-stealing pool, and serves repeated content from a
//! content-addressed result cache. Responses per connection arrive
//! strictly in request order.
//!
//! The default address `127.0.0.1:0` binds an ephemeral port; the daemon
//! prints `braidd listening on HOST:PORT` once ready, so scripts can
//! scrape the port. The process exits cleanly after a `shutdown` request
//! drains the queue.
//!
//! `--cache-dir DIR` adds a crash-safe on-disk tier behind the RAM result
//! cache: entries survive restarts, and a corrupted or torn entry is
//! quarantined rather than served. `--chaos SPEC` arms the deterministic
//! fault-injection harness (see `braid_serve::chaos` for the spec
//! grammar, e.g. `seed=7,torn=0.05,panic=0.02`) — strictly for testing
//! the service's recovery paths. `--io-timeout-ms` and
//! `--max-line-bytes` bound how long a slow or hostile client can hold a
//! connection thread and how much memory a single request line can pin.
//!
//! `--trace-log FILE` exports one JSON line per completed request span
//! (trace ID, phase decomposition, status, cache verdict) plus structured
//! cache events; the in-memory trace registry behind the `metrics`
//! request is always on regardless. An unwritable trace-log path is a
//! startup error — a requested-but-absent log would defeat its purpose.

use std::process::ExitCode;

use braid::serve::{ChaosSpec, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: braidd [--addr HOST:PORT] [--threads N] [--queue-bound N]\n       \
         [--max-connections N] [--cache-capacity N] [--deadline-cycles N]\n       \
         [--cache-dir DIR] [--io-timeout-ms N] [--max-line-bytes N]\n       \
         [--chaos SPEC] [--trace-log FILE] [--version]\n\
         exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("braidd {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("braidd: {flag} needs a value");
            return usage();
        };
        let numeric = value.parse::<u64>();
        match (flag, numeric) {
            ("--addr", _) => cfg.addr = value.clone(),
            ("--threads", Ok(n)) => cfg.threads = n as usize,
            ("--queue-bound", Ok(n)) => cfg.queue_bound = n as usize,
            ("--max-connections", Ok(n)) => cfg.max_connections = n as usize,
            ("--cache-capacity", Ok(n)) => cfg.cache_capacity = n as usize,
            ("--deadline-cycles", Ok(n)) => cfg.deadline_cycles = n,
            ("--io-timeout-ms", Ok(n)) => cfg.io_timeout_ms = n,
            ("--max-line-bytes", Ok(n)) => cfg.max_line_bytes = n as usize,
            ("--cache-dir", _) => cfg.cache_dir = Some(value.into()),
            ("--trace-log", _) => cfg.trace_log = Some(value.into()),
            ("--chaos", _) => match ChaosSpec::parse(value) {
                Ok(spec) => cfg.chaos = Some(spec),
                Err(e) => {
                    eprintln!("braidd: bad --chaos spec: {e}");
                    return usage();
                }
            },
            (_, Err(_))
                if [
                    "--threads",
                    "--queue-bound",
                    "--max-connections",
                    "--cache-capacity",
                    "--deadline-cycles",
                    "--io-timeout-ms",
                    "--max-line-bytes",
                ]
                .contains(&flag) =>
            {
                eprintln!("braidd: {flag} needs a non-negative integer, got {value:?}");
                return usage();
            }
            _ => {
                eprintln!("braidd: unknown option {flag}");
                return usage();
            }
        }
        i += 2;
    }

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("braidd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("braidd listening on {addr}"),
        Err(e) => {
            eprintln!("braidd: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("braidd: {e}");
        return ExitCode::FAILURE;
    }
    println!("braidd drained and stopped");
    ExitCode::SUCCESS
}
