//! The paper's §3.4 exception handling, demonstrated: when an exception is
//! raised, the braid machine rolls back to the last checkpoint, disables
//! all but one BEU (becoming a strict in-order machine), re-executes until
//! the excepting instruction retires, runs the handler, and resumes.
//!
//! ```text
//! cargo run --release --example exception_mode
//! ```

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::BraidConfig;
use braid::core::cores::BraidCore;
use braid::core::functional::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = braid::workloads::by_name("perlbmk", 1.0).ok_or("missing benchmark")?;
    let t = translate(&workload.program, &TranslatorConfig::default())?;
    let mut m = Machine::new(&t.program);
    let trace = m.run(&t.program, workload.fuel)?;
    let core = BraidCore::new(BraidConfig::paper_default());

    let clean = core.run(&t.program, &trace)?;
    println!("clean run      : {} cycles, IPC {:.3}", clean.cycles, clean.ipc());

    for (label, every, handler) in [
        ("rare (1/20k)  ", 20_000usize, 200u64),
        ("common (1/2k) ", 2_000, 200),
        ("frequent (1/500)", 500, 200),
    ] {
        let points: Vec<u64> = (0..trace.len() as u64).step_by(every).skip(1).collect();
        let r = core.run_with_exceptions(&t.program, &trace, &points, handler)?;
        println!(
            "{label}: {} cycles, IPC {:.3}  ({} exceptions, {:.1}% slowdown)",
            r.cycles,
            r.ipc(),
            r.exceptions_taken,
            100.0 * (r.cycles as f64 / clean.cycles as f64 - 1.0),
        );
    }
    println!(
        "\nthe paper (§3.4): \"Due to the rarity of exceptions in general-purpose\n\
         processing, simplicity was chosen over speed for handling them.\""
    );
    Ok(())
}
