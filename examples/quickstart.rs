//! Quickstart: assemble a small program, translate it into braids, and
//! compare the braid microarchitecture against the paper's three baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::processor::{run_braid, run_dep, run_inorder, run_ooo};
use braid::isa::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop with two independent dataflow chains per iteration — two
    // braids, in the paper's terms — plus the usual induction overhead.
    let program = assemble(
        r#"
            addi r0, #0x100000, r20   ; array base
            addi r0, #5000, r1        ; iterations
        loop:
            ldq  r10, 0(r20) @global:1
            addq r10, r4, r10
            xori r10, #129, r10
            stq  r10, 512(r20) @global:1

            addq r4, r4, r11
            subi r11, #3, r11
            addq r2, r11, r2

            lda  r20, 8(r20)
            lda  r4, 1(r4)
            subi r1, #1, r1
            bne  r1, loop
            halt
        "#,
    )?;

    // What does the compiler see? Braids, sizes, internal/external values.
    let translation = translate(&program, &TranslatorConfig::default())?;
    println!("== braid statistics ==\n{}\n", translation.stats);

    // Run the same workload through all four execution-core models.
    let fuel = 1_000_000;
    let ooo = run_ooo(&program, &OooConfig::paper_8wide(), fuel)?;
    let braid = run_braid(&program, &BraidConfig::paper_default(), fuel)?;
    let dep = run_dep(&program, &DepConfig::paper_8wide(), fuel)?;
    let inorder = run_inorder(&program, &InOrderConfig::paper_8wide(), fuel)?;

    println!("== performance (paper Figure 13, one workload) ==");
    println!("out-of-order : IPC {:.3}", ooo.ipc());
    println!("braid        : IPC {:.3}  ({:.1}% of out-of-order)", braid.ipc(), 100.0 * braid.ipc() / ooo.ipc());
    println!("dep-steering : IPC {:.3}", dep.ipc());
    println!("in-order     : IPC {:.3}", inorder.ipc());
    println!();
    println!(
        "braid checkpoints saved {} state words; the conventional machine saved {}",
        braid.checkpoint_words, ooo.checkpoint_words
    );
    Ok(())
}
