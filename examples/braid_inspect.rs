//! Inspect the braids of a program: reproduce the paper's Figure 2 walk-
//! through on its own gcc life-analysis example, printing each braid with
//! its `S`/`T`/`I`/`E` annotations, sizes, widths and operand counts.
//!
//! ```text
//! cargo run --release --example braid_inspect            # paper Figure 2
//! cargo run --release --example braid_inspect -- mcf     # a suite benchmark
//! ```

use braid::compiler::{translate, TranslatorConfig};
use braid::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1);
    let workload = match which.as_deref() {
        None => workloads::kernels::fig2_life(),
        Some(name) => workloads::by_name(name, 0.1)
            .or_else(|| workloads::kernel_suite().into_iter().find(|k| k.name == name))
            .ok_or_else(|| format!("unknown workload {name:?}"))?,
    };
    let translation = translate(&workload.program, &TranslatorConfig::default())?;
    println!("workload {}: {} instructions, {} braids", workload.name, translation.program.len(), translation.braids.len());
    println!("{}\n", translation.stats);

    let show = translation.braids.len().min(24);
    for (i, desc) in translation.braids.iter().take(show).enumerate() {
        println!("braid {i} (block {}, {} instructions, {} internal values):", desc.block, desc.len, desc.internals);
        for idx in desc.start..desc.start + desc.len {
            let inst = &translation.program.insts[idx as usize];
            let b = inst.braid;
            let t = |on: bool| if on { "T" } else { "." };
            println!(
                "  {:>4}  {}{}{}{}{}  {}",
                idx,
                if b.start { "S" } else { "." },
                t(b.t[0]),
                t(b.t[1]),
                if b.internal { "I" } else { "." },
                if b.external { "E" } else { "." },
                inst,
            );
        }
    }
    if translation.braids.len() > show {
        println!("... ({} more braids)", translation.braids.len() - show);
    }
    Ok(())
}
