//! Sweep the braid machine's design space on one workload: BEU count,
//! scheduling window, FIFO depth and external register file size — the
//! paper's Figures 6 and 9–12 condensed into one report.
//!
//! ```text
//! cargo run --release --example design_space -- gzip
//! ```

use braid::core::config::BraidConfig;
use braid::core::cores::BraidCore;
use braid::core::functional::Machine;
use braid::compiler::{translate, TranslatorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".to_string());
    let workload =
        braid::workloads::by_name(&name, 1.0).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    let translation = translate(&workload.program, &TranslatorConfig::default())?;
    let mut machine = Machine::new(&translation.program);
    let trace = machine.run(&translation.program, workload.fuel)?;

    let run = |cfg: BraidConfig| BraidCore::new(cfg).run(&translation.program, &trace).expect("runs").ipc();
    let base = run(BraidConfig::paper_default());
    println!("workload {name}: braid default IPC {base:.3}\n");

    println!("BEUs (paper Figure 9):");
    for beus in [1u32, 2, 4, 8, 16] {
        let mut cfg = BraidConfig::paper_default();
        cfg.beus = beus;
        let ipc = run(cfg);
        println!("  {beus:>2} BEUs: IPC {ipc:.3} ({:+.1}%)", 100.0 * (ipc / base - 1.0));
    }

    println!("\nscheduling window (paper Figure 11):");
    for w in [1u32, 2, 4, 8] {
        let mut cfg = BraidConfig::paper_default();
        cfg.window_size = w;
        let ipc = run(cfg);
        println!("  window {w}: IPC {ipc:.3} ({:+.1}%)", 100.0 * (ipc / base - 1.0));
    }

    println!("\nFIFO entries (paper Figure 10):");
    for q in [4u32, 8, 16, 32, 64] {
        let mut cfg = BraidConfig::paper_default();
        cfg.fifo_entries = q;
        let ipc = run(cfg);
        println!("  {q:>2} entries: IPC {ipc:.3} ({:+.1}%)", 100.0 * (ipc / base - 1.0));
    }

    println!("\nexternal registers (paper Figure 6):");
    for e in [64u32, 16, 8, 4, 2, 1] {
        let mut cfg = BraidConfig::paper_default();
        cfg.external_regs = e;
        let ipc = run(cfg);
        println!("  {e:>2} entries: IPC {ipc:.3} ({:+.1}%)", 100.0 * (ipc / base - 1.0));
    }
    Ok(())
}
