//! Verification tour: the co-simulation oracle, the fault-injection
//! campaign, and the livelock watchdog, all through the public API.
//!
//! ```text
//! cargo run --release --example verification [workload]
//! ```

use braid::core::config::BraidConfig;
use braid::core::cores::BraidCore;
use braid::core::functional::Machine;
use braid::core::SimError;
use braid::compiler::{translate, TranslatorConfig};
use braid_verify::{check_all_cores, run_fault_campaign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".into());
    let w = braid::workloads::by_name(&name, 0.05)
        .ok_or_else(|| format!("unknown workload {name}"))?;

    // 1. Lockstep oracle: every timing core retires the workload against
    //    the functional golden model, or explains exactly where it split.
    println!("== oracle: {} ==", w.name);
    for r in check_all_cores(&w.program, &w.name, w.fuel)? {
        println!("  {r}");
    }

    // 2. Fault campaign: perturb annotations, structure, source text and
    //    configuration; every case must fail typed, never panic or hang.
    let summary = run_fault_campaign(0xB1AD, 4);
    println!("== fault campaign ==\n  {summary}");
    assert_eq!(summary.panics(), 0, "campaign must be panic-free");

    // 3. Watchdog: starve external-register allocation so the braid core
    //    can never retire, and show the structured livelock report.
    let t = translate(&w.program, &TranslatorConfig::default())?;
    let trace = Machine::new(&t.program).run(&t.program, w.fuel)?;
    let mut cfg = BraidConfig::paper_default();
    cfg.alloc_ext_per_cycle = 0;
    cfg.common.watchdog_cycles = 1_000;
    match BraidCore::new(cfg).run(&t.program, &trace) {
        Err(SimError::Livelock(report)) => {
            println!("== watchdog ==\n{report}");
        }
        other => panic!("expected a livelock report, got {other:?}"),
    }
    Ok(())
}
