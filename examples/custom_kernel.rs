//! Bring your own kernel: assemble a BRISC source file (or the built-in
//! dot-product kernel), verify the braid translation computes the same
//! results as the original, and report both machines' performance.
//!
//! ```text
//! cargo run --release --example custom_kernel                 # built-in kernel
//! cargo run --release --example custom_kernel -- my_kernel.s  # your own
//! ```

use std::fs;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, OooConfig};
use braid::core::cores::{BraidCore, OooCore};
use braid::core::functional::Machine;
use braid::isa::asm::assemble;
use braid::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = match std::env::args().nth(1) {
        Some(path) => {
            let source = fs::read_to_string(&path)?;
            let mut p = assemble(&source)?;
            p.name = path;
            p
        }
        None => braid::workloads::kernels::dot_product().program,
    };
    println!("kernel {}: {} static instructions", program.name, program.len());

    // Functional run of the original.
    let fuel = 10_000_000;
    let mut original = Machine::new(&program);
    let trace = original.run(&program, fuel)?;
    println!("executed {} dynamic instructions", trace.len());

    // Translate and verify semantic equivalence on the live outputs: every
    // register the translated machine wrote externally must match.
    let translation = translate(&program, &TranslatorConfig::default())?;
    let mut braided = Machine::new(&translation.program);
    let braid_trace = braided.run(&translation.program, fuel)?;
    let mut checked = 0;
    for reg in Reg::all() {
        let writers: Vec<_> = translation
            .program
            .insts
            .iter()
            .filter(|i| i.written_reg() == Some(reg))
            .collect();
        let purely_external =
            !writers.is_empty() && writers.iter().all(|i| i.braid.external && !i.braid.internal);
        if purely_external {
            assert_eq!(
                original.reg(reg),
                braided.reg(reg),
                "translated program diverged in {reg}"
            );
            checked += 1;
        }
    }
    println!("translation verified: {checked} externally-written registers match");
    println!("braid statistics: {}", translation.stats);

    // Timing comparison.
    let ooo = OooCore::new(OooConfig::paper_8wide()).run(&program, &trace)?;
    let braid = BraidCore::new(BraidConfig::paper_default()).run(&translation.program, &braid_trace)?;
    println!("\nout-of-order IPC {:.3}", ooo.ipc());
    println!("braid        IPC {:.3} ({:.1}% of out-of-order)", braid.ipc(), 100.0 * braid.ipc() / ooo.ipc());
    Ok(())
}
