//! The differential test layer locking down the fast functional tier.
//!
//! Three rings of defence around `braid_core::func`:
//!
//! 1. **Property differential** — 300 PRNG-generated programs run on the
//!    fast interpreter and the reference golden model; the final
//!    [`ArchSnapshot`]s (registers, every non-zero memory page, pc,
//!    retired count) must be byte-identical, for both the original and
//!    the braid-translated program.
//! 2. **Kernel differential** — the same byte-level comparison over the
//!    eight hand-written kernels, plus lockstep-validated sampled runs
//!    (snapshots compared at every interval boundary inside the driver).
//! 3. **Golden sampled-IPC fixtures** — `tests/golden/sampled/<kernel>.golden`
//!    pins the sampled tier's estimate for every kernel × core at the
//!    default window: estimated IPC, exact IPC (both in deterministic
//!    micro-IPC integers) and the relative error. Regenerate after an
//!    intentional estimator change with:
//!
//!    ```text
//!    BRAID_UPDATE_GOLDEN=1 cargo test --test functional_tier
//!    ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::func::{run_func, FastMachine, FuncTable};
use braid::core::functional::Machine;
use braid::core::processor::{run_tier, CoreConfig, TierReport};
use braid::core::{ArchSnapshot, SamplingConfig, Tier};
use braid::workloads::kernel_suite;
use braid_prng::Rng;

mod common;
use common::gen_program;

const DIFF_CASES: u64 = 300;
const FUEL: u64 = 100_000;

/// The paper-default configuration of each timing core, as the tier
/// driver consumes it.
fn paper_cores() -> [CoreConfig; 4] {
    [
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ]
}

/// The default sampling window with lockstep validation off (the tests
/// that want lockstep turn it on explicitly).
fn default_sampling() -> SamplingConfig {
    SamplingConfig { lockstep: false, ..SamplingConfig::default() }
}

/// Runs `program` to completion on both executors and asserts the final
/// architectural snapshots are byte-identical.
fn assert_executors_agree(program: &braid::isa::Program, what: &str) {
    let mut reference = Machine::new(program);
    reference.run(program, FUEL).unwrap_or_else(|e| panic!("{what}: reference: {e}"));
    let table = FuncTable::new(program);
    let mut fast = FastMachine::new(program, &table);
    fast.run(FUEL).unwrap_or_else(|e| panic!("{what}: fast: {e}"));

    let want = ArchSnapshot::of_machine(&reference);
    let got = fast.snapshot();
    assert_eq!(
        want.retired, got.retired,
        "{what}: retire counts diverged ({} vs {})",
        want.retired, got.retired
    );
    if let Some(diff) = want.divergence(&got) {
        panic!("{what}: fast interpreter diverged from the reference: {diff}");
    }
    assert_eq!(want, got, "{what}: snapshot inequality without a reported divergence");
    assert_eq!(want.digest(), got.digest(), "{what}: digests of equal snapshots differ");
}

/// Ring 1: 300 seeded random programs, original and braid-translated,
/// byte-identical architectural state on both executors.
#[test]
fn fast_interpreter_matches_reference_on_300_random_programs() {
    for seed in 0..DIFF_CASES {
        // A seed stream disjoint from the other suites' (`0..CASES`,
        // `0xD1FF_0000 + seed`).
        let mut rng = Rng::seed_from_u64(0xFA57_0000 + seed);
        let p = gen_program(&mut rng);
        assert_executors_agree(&p, &format!("seed {seed}"));
        let t = translate(&p, &TranslatorConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: translate: {e}"));
        assert_executors_agree(&t.program, &format!("seed {seed} (braid)"));
    }
}

/// Ring 2a: the eight golden kernels, original and braid-translated.
#[test]
fn fast_interpreter_matches_reference_on_kernels() {
    let kernels = kernel_suite();
    assert_eq!(kernels.len(), 8, "the golden kernel suite is eight kernels");
    for w in kernels {
        assert_executors_agree(&w.program, &w.name);
        let t = translate(&w.program, &TranslatorConfig::default())
            .unwrap_or_else(|e| panic!("{}: translate: {e}", w.name));
        assert_executors_agree(&t.program, &format!("{} (braid)", w.name));
    }
}

/// Ring 2b: sampled runs with lockstep comparison forced on — the driver
/// itself snapshots fast vs reference at every interval boundary and
/// panics on the first divergence, whatever the build profile.
#[test]
fn sampled_driver_survives_lockstep_on_every_kernel_and_core() {
    let sampling = SamplingConfig { lockstep: true, ..SamplingConfig::default() };
    for w in kernel_suite() {
        for core in &paper_cores() {
            let rep = run_tier(&w.program, core, Tier::Sampled, w.fuel, &sampling)
                .unwrap_or_else(|e| panic!("{}:{}: sampled: {e}", w.name, core.name()));
            let TierReport::Sampled(r) = rep else { panic!("wrong report kind") };
            assert!(r.est_cycles > 0, "{}:{}: empty estimate", w.name, core.name());
            assert!(r.intervals > 0, "{}:{}: no intervals", w.name, core.name());
        }
    }
}

/// The functional tier is only worth having if it is much faster than
/// timing simulation. Aggregated over the whole kernel × core matrix the
/// speedup is ~25-30×; assert the ≥10× floor with that margin absorbing
/// host noise. Debug builds skip the ratio (unoptimized interpreter
/// dispatch is not what ships) but still exercise the path.
#[test]
fn functional_tier_is_at_least_ten_times_faster_than_full_timing() {
    let mut full_nanos = 0u64;
    let mut func_nanos = 0u64;
    for w in kernel_suite() {
        for core in &paper_cores() {
            let run = |tier| {
                run_tier(&w.program, core, tier, w.fuel, &default_sampling())
                    .unwrap_or_else(|e| panic!("{}:{}: {e}", w.name, core.name()))
            };
            full_nanos += run(Tier::Full).host_nanos();
            func_nanos += run(Tier::Func).host_nanos();
        }
        // The standalone entry point agrees with the tier driver on the
        // state digest (same interpreter underneath).
        let direct = run_func(&w.program, w.fuel).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(direct.instructions > 0);
    }
    assert!(func_nanos > 0 && full_nanos > 0, "host clocks advanced");
    if cfg!(debug_assertions) {
        return;
    }
    let speedup = full_nanos as f64 / func_nanos as f64;
    assert!(
        speedup >= 10.0,
        "functional tier only {speedup:.1}x faster than full timing (need >= 10x)"
    );
}

// ------------------------------------------------- golden sampled IPC --

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sampled")
}

/// Rounded-to-nearest integer micro-IPC — pure integer arithmetic, so the
/// goldens are byte-stable across hosts and optimization levels.
fn ipc_micro(instructions: u64, cycles: u64) -> u64 {
    (instructions * 1_000_000 + cycles / 2).checked_div(cycles).unwrap_or(0)
}

/// Signed relative error in parts-per-million, from the micro-IPC
/// integers (again integer arithmetic only).
fn err_ppm(est_micro: u64, exact_micro: u64) -> i64 {
    (est_micro * 1_000_000).checked_div(exact_micro).map_or(0, |r| r as i64 - 1_000_000)
}

/// Renders one kernel's sampled-IPC golden record and asserts the live
/// acceptance bounds: ≤5% relative error at the default window, and a
/// CPI stack that totals exactly the estimated cycles.
fn render_sampled_golden(w: &braid::workloads::Workload) -> String {
    let mut out = String::new();
    for core in &paper_cores() {
        let run = |tier| {
            run_tier(&w.program, core, tier, w.fuel, &default_sampling())
                .unwrap_or_else(|e| panic!("{}:{}: {e}", w.name, core.name()))
        };
        let TierReport::Full(exact) = run(Tier::Full) else { panic!("wrong report kind") };
        let TierReport::Sampled(est) = run(Tier::Sampled) else { panic!("wrong report kind") };
        assert_eq!(
            est.instructions, exact.instructions,
            "{}:{}: tiers disagree on the instruction stream",
            w.name,
            core.name()
        );
        assert_eq!(
            est.cpi.total(),
            est.est_cycles,
            "{}:{}: CPI stack does not total the estimated cycles",
            w.name,
            core.name()
        );
        let est_micro = ipc_micro(est.instructions, est.est_cycles);
        let exact_micro = ipc_micro(exact.instructions, exact.cycles);
        let err = err_ppm(est_micro, exact_micro);
        assert!(
            err.abs() <= 50_000,
            "{}:{}: sampled IPC error {err} ppm exceeds the 5% budget",
            w.name,
            core.name()
        );
        let _ = writeln!(
            out,
            "{} est_ipc_micro {est_micro} exact_ipc_micro {exact_micro} err_ppm {err}",
            core.name()
        );
    }
    out
}

/// Ring 3: the sampled estimate for every kernel × core is pinned to a
/// checked-in fixture; any estimator drift is a deliberate regeneration
/// or a regression.
#[test]
fn sampled_estimates_match_their_goldens() {
    let update = std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden/sampled");
    }

    let mut failures = Vec::new();
    for w in kernel_suite() {
        let current = render_sampled_golden(&w);
        let path = dir.join(format!("{}.golden", w.name));
        if update {
            fs::write(&path, &current).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(no golden file — generate the set with \
                 BRAID_UPDATE_GOLDEN=1 cargo test --test functional_tier)",
                path.display()
            )
        });
        if golden != current {
            failures.push(format!(
                "sampled golden mismatch for kernel `{}`\n\
                 (if this change is intentional, regenerate with \
                 BRAID_UPDATE_GOLDEN=1 cargo test --test functional_tier)\n\
                 golden:\n{golden}current:\n{current}",
                w.name
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn sampled_golden_files_cover_exactly_the_kernel_suite() {
    if std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        return; // the update pass is rewriting the set right now
    }
    let mut on_disk: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden/sampled exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".golden").map(String::from)
        })
        .collect();
    on_disk.sort();
    let mut kernels: Vec<String> = kernel_suite().into_iter().map(|w| w.name).collect();
    kernels.sort();
    assert_eq!(
        on_disk, kernels,
        "tests/golden/sampled/ out of sync with the kernel suite — \
         regenerate with BRAID_UPDATE_GOLDEN=1 cargo test --test functional_tier"
    );
}
