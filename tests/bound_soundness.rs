//! Soundness lock for `braid-analyze`: the static cycle lower bound never
//! exceeds the simulated cycle count — on any core, for any program.
//!
//! Three layers:
//!
//! * a 300-case PRNG differential property (75 random programs × 4 cores):
//!   `cycle_bound(...) ≤ run_tier(Full) cycles`, on both the original
//!   program and (for the braid core) the canonical translation it
//!   actually executes;
//! * the same property on every hand-written kernel workload;
//! * a never-panic corpus: the analyzer and the checker return normally
//!   (a report or a typed error) on mangled annotations and degenerate
//!   programs.

use braid::analyze::{analyze, cycle_bound, AnalyzeConfig};
use braid::compiler::{translate, TranslatorConfig};
use braid::core::processor::{run_tier, trace_program, CoreConfig, TierReport};
use braid::core::{
    BraidConfig, DepConfig, InOrderConfig, OooConfig, SamplingConfig, Tier,
};
use braid::isa::Program;
use braid_prng::Rng;

mod common;
use common::gen_program;

fn paper_cores() -> Vec<CoreConfig> {
    vec![
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ]
}

/// Full-tier cycles for `program` on `core` (the braid core translates
/// internally, so callers pass the *original* program for every core).
fn full_cycles(program: &Program, core: &CoreConfig, fuel: u64) -> u64 {
    match run_tier(program, core, Tier::Full, fuel, &SamplingConfig::default()) {
        Ok(TierReport::Full(r)) => r.cycles,
        Ok(_) => unreachable!("full tier returns a full report"),
        Err(e) => panic!("{}: full tier failed: {e}", core.name()),
    }
}

/// Asserts bound ≤ simulated for every core on `program`, via the same
/// trace selection `analyze` uses: the braid core is bounded over its
/// canonical translation, everything else over the program itself.
/// Counts one checked (program, core) pair per call per core.
fn assert_sound(program: &Program, fuel: u64, tag: &str) -> u64 {
    let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
    let mut checked = 0;
    for core in paper_cores() {
        let (exec, sim_ok): (Program, bool) = if core.is_braid() {
            match translate(program, &tconfig) {
                Ok(t) => {
                    // run_tier would reject check-dirty translations;
                    // bound them anyway (soundness must still hold), but
                    // only compare against simulation when it runs.
                    let clean = !t
                        .check(program, &braid::check::CheckConfig::default())
                        .has_errors();
                    (t.program, clean)
                }
                Err(_) => continue, // no braid execution to compare against
            }
        } else {
            (program.clone(), true)
        };
        if !sim_ok {
            continue;
        }
        let trace = trace_program(&exec, fuel).expect("functional trace");
        let bound = cycle_bound(&exec, &core, &trace).cycles();
        let cycles = full_cycles(program, &core, fuel);
        assert!(
            bound <= cycles,
            "{tag}: UNSOUND on {}: bound {bound} > simulated {cycles}",
            core.name()
        );
        checked += 1;
    }
    checked
}

#[test]
fn bound_is_sound_on_300_random_programs() {
    let mut total = 0;
    let mut seed = 0u64;
    while total < 300 {
        let mut rng = Rng::seed_from_u64(seed);
        let p = gen_program(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert_sound(&p, 1_000_000, &format!("seed {seed}"))
        }));
        match result {
            Ok(n) => total += n,
            Err(payload) => {
                eprintln!("soundness property failed for seed {seed}");
                std::panic::resume_unwind(payload);
            }
        }
        seed += 1;
    }
    assert!(total >= 300, "checked {total} (program, core) cases");
}

#[test]
fn bound_is_sound_on_every_kernel_workload() {
    for w in braid::workloads::kernel_suite() {
        let checked = assert_sound(&w.program, w.fuel, &w.name);
        assert_eq!(checked, 4, "{}: all four cores must be checked", w.name);
    }
}

#[test]
fn analyze_matches_the_direct_bound_on_kernels() {
    // The `analyze` orchestration must report the same per-core bounds the
    // direct `cycle_bound` computation gives (no drift between the CLI
    // path and the library path).
    let cores = paper_cores();
    for w in braid::workloads::kernel_suite().into_iter().take(3) {
        let config = AnalyzeConfig { fuel: w.fuel, ..AnalyzeConfig::default() };
        let report = analyze(&w.program, &cores, &config).expect("analyze runs");
        assert_eq!(report.bounds.len(), 4);
        for core in &cores {
            let exec = if core.is_braid() {
                translate(&w.program, &TranslatorConfig { self_check: false, ..Default::default() })
                    .expect("kernels translate")
                    .program
            } else {
                w.program.clone()
            };
            let trace = trace_program(&exec, w.fuel).expect("trace");
            let direct = cycle_bound(&exec, core, &trace).cycles();
            let reported = report
                .bounds
                .iter()
                .find(|b| b.core == core.name())
                .map(|b| b.cycles())
                .expect("bound present");
            assert_eq!(direct, reported, "{}:{}", w.name, core.name());
        }
    }
}

/// Analyzer-and-checker-never-panic corpus: mangled annotation bits,
/// truncated programs, and wild branches must produce a report or a typed
/// error — never a panic. Mirrors the braidd fuzz suite's seeded-PRNG
/// style so every failure is a replayable seed.
#[test]
fn analyzer_and_checker_never_panic_on_mangled_programs() {
    let cores = paper_cores();
    let config = AnalyzeConfig { fuel: 10_000, ..AnalyzeConfig::default() };
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let base = gen_program(&mut rng);
        // Annotate first so the mangling hits real braid bits half the
        // time, then corrupt.
        let tconfig = TranslatorConfig { self_check: false, ..Default::default() };
        let mut p = match translate(&base, &tconfig) {
            Ok(t) if seed % 2 == 0 => t.program,
            _ => base,
        };
        for _ in 0..rng.gen_range(1..6u32) {
            if p.insts.is_empty() {
                break;
            }
            let i = rng.gen_range(0..p.insts.len());
            match rng.gen_range(0..6u32) {
                0 => p.insts[i].braid.start = !p.insts[i].braid.start,
                1 => p.insts[i].braid.internal = !p.insts[i].braid.internal,
                2 => p.insts[i].braid.external = !p.insts[i].braid.external,
                3 => p.insts[i].braid.t[rng.gen_range(0..2usize)] ^= true,
                4 => {
                    p.insts.truncate(i.max(1));
                }
                _ => {
                    if let Some(t) = p.insts[i].target() {
                        p.insts[i].set_target(t.wrapping_add(rng.gen_range(0..4096u32)));
                    }
                }
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Typed errors are fine; panics are the bug.
            let _ = braid::check::check_program(&p, &braid::check::CheckConfig::default());
            let _ = analyze(&p, &cores, &config);
        }));
        assert!(result.is_ok(), "analyzer/checker panicked for seed {seed}");
    }
}
