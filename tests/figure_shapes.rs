//! Shape-regression tests: the qualitative conclusions of the paper's
//! figures, asserted on a small benchmark sample so a model change that
//! breaks a reproduced shape fails CI.

use braid_bench::experiments as exp;
use braid_bench::{prepare, Prepared};

fn sample() -> Vec<Prepared> {
    ["gcc", "gzip", "swim", "twolf"]
        .iter()
        .map(|n| prepare(braid_workloads::by_name(n, 0.05).expect("known benchmark")))
        .collect()
}

fn avg(t: &braid_bench::table::Table) -> &[f64] {
    &t.row("average").expect("average row").values
}

#[test]
fn figure6_shape_eight_external_registers_suffice() {
    let s = sample();
    let t = exp::fig6(&s);
    let a = avg(&t);
    // columns: e64 e32 e16 e8 e4 e2 e1
    assert!(a[3] > 0.97, "8 entries within 3% of 64: {a:?}");
    // Small-scale scheduling noise allows ~2% wiggle.
    assert!(a[6] <= a[3] + 0.03, "1 entry is never materially better than 8: {a:?}");
}

#[test]
fn figure8_shape_two_bypass_values_suffice() {
    let s = sample();
    let t = exp::fig8(&s);
    let a = avg(&t);
    // columns: b8 b4 b2 b1
    assert!(a[2] > 0.95, "2 bypass values within 5% of 8: {a:?}");
}

#[test]
fn figure9_shape_beus_scale() {
    let s = sample();
    let t = exp::fig9(&s);
    let a = avg(&t);
    // columns: beu1 beu2 beu4 beu8 beu16 — monotonic non-decreasing.
    for w in a.windows(2) {
        assert!(w[1] >= w[0] * 0.98, "more BEUs never hurt: {a:?}");
    }
    assert!(a[3] > a[0] * 1.2, "8 BEUs clearly beat 1: {a:?}");
}

#[test]
fn figure11_shape_window_two_is_the_knee() {
    let s = sample();
    let t = exp::fig11(&s);
    let a = avg(&t);
    // columns: w1 w2 w4 w8
    let rise_1_2 = a[1] - a[0];
    let rise_2_4 = a[2] - a[1];
    assert!(rise_1_2 > 0.0, "window 2 beats window 1: {a:?}");
    assert!(rise_1_2 > rise_2_4, "the 1→2 step is the steep one: {a:?}");
}

#[test]
fn figure14_shape_more_beus_beat_wider_beus() {
    let s = sample();
    let t = exp::fig14(&s);
    let a = avg(&t);
    // columns: 4beu-2fu, 8beu-1fu
    assert!(a[1] > a[0], "8 BEUs x 1 FU beats 4 BEUs x 2 FUs: {a:?}");
}

#[test]
fn figure13_shape_paradigm_ordering() {
    let s = sample();
    let t = exp::fig13(&s);
    let a = avg(&t);
    // columns: io4 dep4 braid4 ooo4 io8 dep8 braid8 ooo8 io16 dep16 braid16 ooo16
    let (io8, braid8, ooo8) = (a[4], a[6], a[7]);
    assert!(io8 < braid8, "braid clearly beats in-order: {a:?}");
    assert!(braid8 <= ooo8 * 1.02, "out-of-order is the ceiling: {a:?}");
    assert!(braid8 > ooo8 * 0.6, "braid stays in out-of-order territory: {a:?}");
    // Performance keeps growing with width for the ooo machine (paper §4.4
    // observation 1: "significant performance gain is still available").
    assert!(a[11] > a[7], "16-wide ooo beats 8-wide: {a:?}");
}

#[test]
fn splits_shape_paper_rates() {
    let s = sample();
    let t = exp::splits(&s);
    let a = avg(&t);
    // columns: ws-split ord-split single-insts single-brnop
    assert!(a[0] < 0.05, "working-set splits stay rare: {a:?}");
    assert!(a[1] < 0.05, "ordering splits stay rare: {a:?}");
    assert!(a[2] > 0.08 && a[2] < 0.35, "single-inst braids near the paper's 20%: {a:?}");
}
