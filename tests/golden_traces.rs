//! Golden-trace regression tests for the hand-written kernels and the
//! compiled loop-nest family.
//!
//! For every kernel workload and every curated `ln_*` loop nest (braid-lang
//! source through the `braidc` pipeline), `tests/golden/<name>.golden` pins
//! down the observable behaviour of the whole stack on the paper-default
//! machines:
//!
//! * the dynamic (retired) instruction count,
//! * the functional model's final architectural register state
//!   (non-zero registers only), and
//! * the cycle count of each of the four timing cores.
//!
//! Everything recorded is deterministic — integer state and cycle counts
//! only, no host wall-clock, no floats — so the files are byte-stable
//! across machines and optimization levels. Any drift is either a real
//! behaviour change (update the goldens deliberately) or a regression
//! (fix it).
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BRAID_UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid::core::functional::Machine;
use braid::isa::Reg;
use braid::workloads::{kernel_suite, loopnest_suite, Workload};

/// Everything the golden set covers: hand-written kernels plus the
/// compiled loop-nest family.
fn golden_suite() -> Vec<Workload> {
    let mut suite = kernel_suite();
    suite.extend(loopnest_suite());
    suite
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Renders the kernel's golden record: one `key value` line per fact, in
/// a fixed order.
fn render_golden(w: &Workload) -> String {
    let mut m = Machine::new(&w.program);
    let trace = m.run(&w.program, w.fuel).unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert!(m.halted(), "{} must halt", w.name);

    let mut out = String::new();
    let _ = writeln!(out, "instructions {}", trace.len());
    for reg in Reg::all() {
        let v = m.reg(reg);
        if v != 0 {
            let _ = writeln!(out, "reg {reg} {v:#x}");
        }
    }

    let io = InOrderCore::new(InOrderConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: inorder: {e}", w.name));
    let dep = DepSteerCore::new(DepConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: dep: {e}", w.name));
    let ooo = OooCore::new(OooConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: ooo: {e}", w.name));

    let t = translate(&w.program, &TranslatorConfig::default())
        .unwrap_or_else(|e| panic!("{}: translate: {e}", w.name));
    let mut mb = Machine::new(&t.program);
    let braid_trace =
        mb.run(&t.program, w.fuel).unwrap_or_else(|e| panic!("{}: braid trace: {e}", w.name));
    let braid = BraidCore::new(BraidConfig::paper_default())
        .run(&t.program, &braid_trace)
        .unwrap_or_else(|e| panic!("{}: braid: {e}", w.name));

    for (label, r) in [("inorder", &io), ("dep", &dep), ("ooo", &ooo), ("braid", &braid)] {
        assert_eq!(r.instructions, trace.len() as u64, "{}/{label} retires all", w.name);
        let _ = writeln!(out, "cycles {label} {}", r.cycles);
    }
    out
}

/// A readable line diff: every line that changed, went missing, or
/// appeared, with its line number.
fn diff_report(name: &str, golden: &str, current: &str) -> String {
    let mut out = format!(
        "golden trace mismatch for kernel `{name}`\n\
         (if this change is intentional, regenerate with \
         BRAID_UPDATE_GOLDEN=1 cargo test --test golden_traces)\n"
    );
    let golden_lines: Vec<&str> = golden.lines().collect();
    let current_lines: Vec<&str> = current.lines().collect();
    let n = golden_lines.len().max(current_lines.len());
    for i in 0..n {
        match (golden_lines.get(i), current_lines.get(i)) {
            (Some(g), Some(c)) if g == c => {}
            (Some(g), Some(c)) => {
                let _ = writeln!(out, "  line {}: golden  `{g}`", i + 1);
                let _ = writeln!(out, "  line {}: current `{c}`", i + 1);
            }
            (Some(g), None) => {
                let _ = writeln!(out, "  line {}: missing from current: `{g}`", i + 1);
            }
            (None, Some(c)) => {
                let _ = writeln!(out, "  line {}: only in current: `{c}`", i + 1);
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

#[test]
fn kernels_match_their_golden_traces() {
    let update = std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden");
    }

    let mut failures = Vec::new();
    for w in golden_suite() {
        let current = render_golden(&w);
        let path = dir.join(format!("{}.golden", w.name));
        if update {
            fs::write(&path, &current).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(no golden file — generate the set with \
                 BRAID_UPDATE_GOLDEN=1 cargo test --test golden_traces)",
                path.display()
            )
        });
        if golden != current {
            failures.push(diff_report(&w.name, &golden, &current));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn golden_files_cover_exactly_the_golden_suite() {
    if std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        return; // the update pass is rewriting the set right now
    }
    let mut on_disk: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".golden").map(String::from)
        })
        .collect();
    on_disk.sort();
    let mut kernels: Vec<String> = golden_suite().into_iter().map(|w| w.name).collect();
    kernels.sort();
    assert_eq!(
        on_disk, kernels,
        "tests/golden/ out of sync with the kernel and loop-nest suites — \
         regenerate with BRAID_UPDATE_GOLDEN=1 cargo test --test golden_traces"
    );
}
