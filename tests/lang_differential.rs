//! The braid-lang compiler's correctness lock: 300 seeded random
//! well-typed programs, each compiled twice (plain and annotated), the
//! annotated output held to the braid contract, and the functional run
//! held byte-identical to the golden interpreter over every declared
//! array — the full architectural state, since the generator stores every
//! top-level scalar into a trailing `zz_out` array.

use braid::check::{check_program, CheckConfig};
use braid::core::Machine;
use braid::lang::{codegen, compile, compile_annotated, genprog, interp, parser};

const CASES: u64 = 300;
const FUEL: u64 = 4_000_000;

#[test]
fn three_hundred_random_programs_compile_check_clean_and_match_the_interpreter() {
    for seed in 0..CASES {
        let src = genprog::random_source(seed);
        let fail = |what: &str, detail: String| -> ! {
            panic!("seed {seed}: {what}\n--- source ---\n{src}\n--------------\n{detail}")
        };

        let ast = parser::parse(&src)
            .unwrap_or_else(|r| fail("golden parse failed", r.to_string()));
        let golden = interp::interp(&ast, FUEL)
            .unwrap_or_else(|e| fail("golden interpreter failed", e.to_string()));

        let plain = compile(&format!("fuzz{seed}"), &src)
            .unwrap_or_else(|r| fail("compile failed", r.to_string()));
        plain
            .program
            .validate()
            .unwrap_or_else(|e| fail("compiled program invalid", e.to_string()));

        let annotated = compile_annotated(&format!("fuzz{seed}a"), &src)
            .unwrap_or_else(|r| fail("annotated compile failed", r.to_string()));
        let report = check_program(&annotated.program, &CheckConfig::default());
        if report.has_errors() {
            fail("annotated output not check-clean", report.to_string());
        }

        // Both compilations must land on the interpreter's memory image.
        for (label, program) in [("plain", &plain.program), ("annotated", &annotated.program)] {
            let mut m = Machine::new(program);
            m.run(program, FUEL)
                .unwrap_or_else(|e| fail("functional run failed", format!("{label}: {e}")));
            assert!(m.halted(), "seed {seed}: {label} run must halt");
            for (k, (name, words)) in golden.arrays.iter().enumerate() {
                let base = codegen::ARRAY_BASE + k as u64 * codegen::ARRAY_STRIDE;
                for (j, w) in words.iter().enumerate() {
                    let got = m.mem.read_u64(base + j as u64 * 8);
                    if got != *w {
                        fail(
                            "memory diverges from the golden interpreter",
                            format!("{label}: {name}[{j}] = {got:#x}, golden {:#x}", *w),
                        );
                    }
                }
            }
        }
    }
}
