//! CPI-stack regression and identity tests.
//!
//! Three guarantees pinned down here:
//!
//! 1. **Golden snapshots** — `tests/golden/cpi/<kernel>.golden` records
//!    the full cycle-accounting breakdown of every kernel on all four
//!    paper-default machines. Any drift in where cycles are charged is a
//!    deliberate accounting change (regenerate) or a regression (fix).
//! 2. **Conservation** — every cycle is charged to exactly one cause, so
//!    each stack totals exactly the core's cycle count. Checked on every
//!    kernel × core pair while rendering the goldens.
//! 3. **Observer neutrality** — attaching the full [`PipelineObserver`]
//!    must not change simulation results: for 200 seeded random-program ×
//!    core cases, the observed and unobserved runs produce byte-identical
//!    deterministic report JSON.
//!
//! Regenerate the snapshots after an intentional accounting change with:
//!
//! ```text
//! BRAID_UPDATE_GOLDEN=1 cargo test --test cpi_stacks
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid::core::functional::Machine;
use braid::core::report::SimReport;
use braid::core::StallCause;
use braid::isa::{AliasClass, Inst, Opcode, Program, Reg};
use braid::obs::{report_json, PipelineObserver};
use braid::workloads::{kernel_suite, Workload};
use braid_prng::Rng;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cpi")
}

/// Runs the kernel on all four paper-default machines, returning
/// `(label, report)` pairs in a fixed order.
fn run_all_cores(w: &Workload) -> Vec<(&'static str, SimReport)> {
    let mut m = Machine::new(&w.program);
    let trace = m.run(&w.program, w.fuel).unwrap_or_else(|e| panic!("{}: {e}", w.name));

    let io = InOrderCore::new(InOrderConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: inorder: {e}", w.name));
    let dep = DepSteerCore::new(DepConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: dep: {e}", w.name));
    let ooo = OooCore::new(OooConfig::paper_8wide())
        .run(&w.program, &trace)
        .unwrap_or_else(|e| panic!("{}: ooo: {e}", w.name));

    let t = translate(&w.program, &TranslatorConfig::default())
        .unwrap_or_else(|e| panic!("{}: translate: {e}", w.name));
    let mut mb = Machine::new(&t.program);
    let braid_trace =
        mb.run(&t.program, w.fuel).unwrap_or_else(|e| panic!("{}: braid trace: {e}", w.name));
    let braid = BraidCore::new(BraidConfig::paper_default())
        .run(&t.program, &braid_trace)
        .unwrap_or_else(|e| panic!("{}: braid: {e}", w.name));

    vec![("inorder", io), ("dep", dep), ("ooo", ooo), ("braid", braid)]
}

/// Renders the kernel's CPI golden record: per core, the cycle total and
/// one line per cause (all ten, zeros included), in canonical order.
fn render_cpi_golden(w: &Workload) -> String {
    let mut out = String::new();
    for (label, r) in run_all_cores(w) {
        assert_eq!(
            r.cpi.total(),
            r.cycles,
            "{}/{label}: CPI stack must account for every cycle exactly once",
            w.name
        );
        let _ = writeln!(out, "cycles {label} {}", r.cycles);
        for cause in StallCause::ALL {
            let _ = writeln!(out, "cpi {label} {} {}", cause.key(), r.cpi.get(cause));
        }
    }
    out
}

fn diff_report(name: &str, golden: &str, current: &str) -> String {
    let mut out = format!(
        "CPI golden mismatch for kernel `{name}`\n\
         (if this accounting change is intentional, regenerate with \
         BRAID_UPDATE_GOLDEN=1 cargo test --test cpi_stacks)\n"
    );
    let golden_lines: Vec<&str> = golden.lines().collect();
    let current_lines: Vec<&str> = current.lines().collect();
    for i in 0..golden_lines.len().max(current_lines.len()) {
        match (golden_lines.get(i), current_lines.get(i)) {
            (Some(g), Some(c)) if g == c => {}
            (Some(g), Some(c)) => {
                let _ = writeln!(out, "  line {}: golden  `{g}`", i + 1);
                let _ = writeln!(out, "  line {}: current `{c}`", i + 1);
            }
            (Some(g), None) => {
                let _ = writeln!(out, "  line {}: missing from current: `{g}`", i + 1);
            }
            (None, Some(c)) => {
                let _ = writeln!(out, "  line {}: only in current: `{c}`", i + 1);
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Guarantee 1 + 2: the golden snapshots (conservation is asserted inside
/// [`render_cpi_golden`], so the update pass can't record a broken stack).
#[test]
fn kernels_match_their_golden_cpi_stacks() {
    let update = std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden/cpi");
    }

    let mut failures = Vec::new();
    for w in kernel_suite() {
        let current = render_cpi_golden(&w);
        let path = dir.join(format!("{}.golden", w.name));
        if update {
            fs::write(&path, &current).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(no golden file — generate the set with \
                 BRAID_UPDATE_GOLDEN=1 cargo test --test cpi_stacks)",
                path.display()
            )
        });
        if golden != current {
            failures.push(diff_report(&w.name, &golden, &current));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn golden_cpi_files_cover_exactly_the_kernel_suite() {
    if std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        return; // the update pass is rewriting the set right now
    }
    let mut on_disk: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden/cpi exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".golden").map(String::from)
        })
        .collect();
    on_disk.sort();
    let mut kernels: Vec<String> = kernel_suite().into_iter().map(|w| w.name).collect();
    kernels.sort();
    assert_eq!(
        on_disk, kernels,
        "tests/golden/cpi/ out of sync with the kernel suite — \
         regenerate with BRAID_UPDATE_GOLDEN=1 cargo test --test cpi_stacks"
    );
}

// ---- observer neutrality over random programs ----

/// A small random straight-line program (ALU mix, loads, stores, a few
/// forward branches) over a low data page, ending in `halt`. Same recipe
/// as `tests/properties.rs`, trimmed to the shapes that matter for timing.
fn gen_program(rng: &mut Rng) -> Program {
    let int = |rng: &mut Rng| Reg::int(rng.gen_range(0..32u8)).expect("in range");
    loop {
        let len = rng.gen_range(8..64usize);
        let mut insts: Vec<Inst> = (0..len)
            .map(|_| match rng.gen_range(0..8u32) {
                0..=2 => {
                    let op = *rng.choose(&[Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Xor]);
                    let (a, b, d) = (int(rng), int(rng), int(rng));
                    Inst::alu(op, a, b, d).expect("valid shape")
                }
                3..=4 => {
                    let (s, d) = (int(rng), int(rng));
                    Inst::alui(Opcode::Addi, s, rng.gen_range(-100..100i32), d)
                        .expect("valid shape")
                }
                5..=6 => {
                    let (base, d) = (int(rng), int(rng));
                    let slot = rng.gen_range(0..32i32);
                    Inst::load(Opcode::Ldq, base, slot * 8, d, AliasClass::Unknown)
                        .expect("valid shape")
                }
                _ => {
                    let (v, base) = (int(rng), int(rng));
                    let slot = rng.gen_range(0..32i32);
                    Inst::store(Opcode::Stq, v, base, slot * 8, AliasClass::Unknown)
                        .expect("valid shape")
                }
            })
            .collect();
        for _ in 0..rng.gen_range(0..3usize) {
            let at = rng.gen_range(0..60usize).min(insts.len().saturating_sub(1));
            let skip = rng.gen_range(1..8u32);
            let target = (at as u32 + 1 + skip).min(insts.len() as u32);
            let src = int(rng);
            insts.insert(at, Inst::branch(Opcode::Bne, src, target + 1).expect("shape"));
        }
        let halt_at = insts.len() as u32;
        #[allow(clippy::needless_range_loop)] // set_target needs &mut insts[i]
        for i in 0..insts.len() {
            if let Some(t) = insts[i].target() {
                insts[i].set_target(t.max(i as u32 + 1).min(halt_at));
            }
        }
        insts.push(Inst::halt());
        let mut p = Program::from_insts("prop", insts);
        p.data.push(braid::isa::DataSegment::from_words(
            0,
            &(0..64).map(|i| i * 13 + 5).collect::<Vec<u64>>(),
        ));
        if p.validate().is_ok() {
            return p;
        }
    }
}

/// Guarantee 3: 50 random programs × 4 cores = 200 cases where the
/// observed and unobserved runs must agree byte-for-byte on the
/// deterministic report rendering (which covers cycles, every stall
/// counter and the full CPI stack — everything except host wall-clock).
#[test]
fn observer_on_and_off_agree_for_200_cases() {
    const SEEDS: u64 = 50;
    const FUEL: u64 = 100_000;
    for seed in 0..SEEDS {
        let mut rng = Rng::seed_from_u64(0xC91_57AC + seed);
        let p = gen_program(&mut rng);
        let mut m = Machine::new(&p);
        let trace = m.run(&p, FUEL).expect("runs");
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        let mut mb = Machine::new(&t.program);
        let braid_trace = mb.run(&t.program, FUEL).expect("runs");

        let check = |label: &str, plain: SimReport, observed: SimReport, retired: u64| {
            assert_eq!(
                report_json(&plain).to_string(),
                report_json(&observed).to_string(),
                "seed {seed}/{label}: observer changed the simulation"
            );
            assert_eq!(
                retired, observed.instructions,
                "seed {seed}/{label}: every retired instruction gets one retired record"
            );
        };

        let io = InOrderCore::new(InOrderConfig::paper_8wide());
        let mut obs = PipelineObserver::new();
        check(
            "inorder",
            io.run(&p, &trace).expect("runs"),
            io.run_observed(&p, &trace, &mut obs).expect("runs"),
            obs.retired_count(),
        );

        let dep = DepSteerCore::new(DepConfig::paper_8wide());
        let mut obs = PipelineObserver::new();
        check(
            "dep",
            dep.run(&p, &trace).expect("runs"),
            dep.run_observed(&p, &trace, &mut obs).expect("runs"),
            obs.retired_count(),
        );

        let ooo = OooCore::new(OooConfig::paper_8wide());
        let mut obs = PipelineObserver::new();
        check(
            "ooo",
            ooo.run(&p, &trace).expect("runs"),
            ooo.run_observed(&p, &trace, &mut obs).expect("runs"),
            obs.retired_count(),
        );

        let braid = BraidCore::new(BraidConfig::paper_default());
        let mut obs = PipelineObserver::new();
        check(
            "braid",
            braid.run(&t.program, &braid_trace).expect("runs"),
            braid.run_observed(&t.program, &braid_trace, &mut obs).expect("runs"),
            obs.retired_count(),
        );
    }
}
