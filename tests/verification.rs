//! Tier-1 verification: the lockstep co-simulation oracle across all four
//! timing cores on real workloads, plus the deterministic fault campaign.

use braid_verify::{check_all_cores, run_fault_campaign, FaultOutcome};

#[test]
fn oracle_passes_every_core_on_sampled_spec_workloads() {
    for name in ["gcc", "gzip", "swim", "twolf", "mcf", "art"] {
        let w = braid_workloads::by_name(name, 0.05).expect("known workload");
        let reports = check_all_cores(&w.program, &w.name, w.fuel)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reports.len(), 4, "{name}: all four cores must report");
        for r in &reports {
            assert!(r.instructions > 0, "{name}/{} retired nothing", r.core);
            assert!(r.cycles > 0, "{name}/{} took no cycles", r.core);
        }
    }
}

#[test]
fn oracle_passes_every_core_on_kernels() {
    for w in braid_workloads::kernel_suite() {
        let reports = check_all_cores(&w.program, &w.name, w.fuel)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(reports.len(), 4);
    }
}

#[test]
fn fault_campaign_completes_typed_and_panic_free() {
    let summary = run_fault_campaign(2026, 6);
    assert_eq!(summary.panics(), 0, "{summary}");
    for r in &summary.reports {
        assert!(
            !matches!(r.outcome, FaultOutcome::Panicked(_)),
            "fault {} panicked",
            r.fault
        );
    }
    // The harness must actually observe faults, not mask everything.
    assert!(summary.typed_errors() > 0, "{summary}");
    assert!(summary.typed_errors() + summary.divergences() > summary.masked(), "{summary}");
}
