//! Golden braid-bound fixtures: the static cycle lower bound of every
//! hand-written kernel on every paper core, pinned line by line.
//!
//! A bound change is a semantic event — either the analyzer got tighter
//! (good, but the goldens must be regenerated deliberately) or an engine
//! change moved the floor (which the soundness suite cross-checks). The
//! fixtures also re-assert soundness at generation *and* verification
//! time: a pinned bound that exceeds its simulated cycles can never land.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! BRAID_UPDATE_GOLDEN=1 cargo test --test golden_bounds
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use braid::analyze::cycle_bound;
use braid::compiler::{translate, TranslatorConfig};
use braid::core::processor::{run_tier, trace_program, CoreConfig, TierReport};
use braid::core::{
    BraidConfig, DepConfig, InOrderConfig, OooConfig, SamplingConfig, Tier,
};
use braid::workloads::{kernel_suite, Workload};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bounds")
}

fn paper_cores() -> Vec<CoreConfig> {
    vec![
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ]
}

/// Renders one kernel's golden record: per core, the bound, its limiter,
/// every component, and the simulated cycles it must stay below.
fn render_golden(w: &Workload) -> String {
    let mut out = String::new();
    for core in paper_cores() {
        let exec = if core.is_braid() {
            translate(&w.program, &TranslatorConfig { self_check: false, ..Default::default() })
                .unwrap_or_else(|e| panic!("{}: translate: {e}", w.name))
                .program
        } else {
            w.program.clone()
        };
        let trace = trace_program(&exec, w.fuel)
            .unwrap_or_else(|e| panic!("{}:{}: trace: {e}", w.name, core.name()));
        let b = cycle_bound(&exec, &core, &trace);
        let cycles =
            match run_tier(&w.program, &core, Tier::Full, w.fuel, &SamplingConfig::default()) {
                Ok(TierReport::Full(r)) => r.cycles,
                Ok(_) => unreachable!("full tier returns a full report"),
                Err(e) => panic!("{}:{}: full tier: {e}", w.name, core.name()),
            };
        assert!(
            b.cycles() <= cycles,
            "{}:{}: UNSOUND: bound {} > simulated {cycles}",
            w.name,
            core.name(),
            b.cycles()
        );
        let _ = writeln!(
            out,
            "bound {} {} limiter {} width {} issue {} lsq {} dep {} simulated {cycles}",
            core.name(),
            b.cycles(),
            b.limiter(),
            b.width_bound,
            b.issue_bound,
            b.lsq_bound,
            b.dep_bound,
        );
    }
    out
}

#[test]
fn kernel_bounds_match_their_goldens() {
    let update = std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        fs::create_dir_all(&dir).expect("create tests/golden/bounds");
    }

    let mut failures = Vec::new();
    for w in kernel_suite() {
        let current = render_golden(&w);
        let path = dir.join(format!("{}.golden", w.name));
        if update {
            fs::write(&path, &current).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(no golden file — generate the set with \
                 BRAID_UPDATE_GOLDEN=1 cargo test --test golden_bounds)",
                path.display()
            )
        });
        if golden != current {
            failures.push(format!(
                "golden bound mismatch for kernel `{}`\n\
                 (if intentional, regenerate with BRAID_UPDATE_GOLDEN=1 \
                 cargo test --test golden_bounds)\n  golden:\n{}\n  current:\n{}",
                w.name, golden, current
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn golden_bound_files_cover_exactly_the_kernel_suite() {
    if std::env::var("BRAID_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        return;
    }
    let mut expected: Vec<String> =
        kernel_suite().iter().map(|w| format!("{}.golden", w.name)).collect();
    expected.sort();
    let mut found: Vec<String> = fs::read_dir(golden_dir())
        .expect("tests/golden/bounds exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".golden"))
        .collect();
    found.sort();
    assert_eq!(
        expected, found,
        "golden bound fixtures out of sync with the kernel suite; \
         regenerate with BRAID_UPDATE_GOLDEN=1 cargo test --test golden_bounds"
    );
}
