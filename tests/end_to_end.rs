//! Cross-crate integration: the full 26-benchmark suite plus the kernels,
//! through assembly/generation → validation → translation → functional
//! execution → timing simulation.

use braid::compiler::{translate, TranslatorConfig};
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::core::cores::{BraidCore, DepSteerCore, InOrderCore, OooCore};
use braid::core::functional::Machine;
use braid::isa::Reg;
use braid::workloads::{kernel_suite, suite, Workload};

const SCALE: f64 = 0.05;

fn all_workloads() -> Vec<Workload> {
    let mut v = suite(SCALE);
    v.extend(kernel_suite());
    v
}

#[test]
fn every_workload_validates_and_halts() {
    for w in all_workloads() {
        w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut m = Machine::new(&w.program);
        let trace = m
            .run(&w.program, w.fuel)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(m.halted(), "{} must reach halt", w.name);
        assert!(!trace.is_empty());
    }
}

#[test]
fn translation_preserves_live_state_everywhere() {
    for w in all_workloads() {
        let t = translate(&w.program, &TranslatorConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        t.program.validate().unwrap();
        assert_eq!(t.program.len(), w.program.len(), "{}: instruction count", w.name);

        let mut original = Machine::new(&w.program);
        original.run(&w.program, w.fuel).unwrap();
        let mut braided = Machine::new(&t.program);
        let braid_trace = braided.run(&t.program, w.fuel).unwrap();
        let mut m0 = Machine::new(&w.program);
        let trace = m0.run(&w.program, w.fuel).unwrap();
        assert_eq!(trace.len(), braid_trace.len(), "{}: dynamic length", w.name);

        // Registers the braid machine writes externally are architectural
        // state and must match; internal-only values are legitimately
        // discarded.
        for reg in Reg::all() {
            let writers: Vec<_> = t
                .program
                .insts
                .iter()
                .filter(|i| i.written_reg() == Some(reg))
                .collect();
            // Registers also written internally may end with a discarded
            // (dead) external value; the paradigm only guarantees values
            // that can still be read. Purely-external registers must match.
            let purely_external =
                !writers.is_empty() && writers.iter().all(|i| i.braid.external && !i.braid.internal);
            if purely_external {
                assert_eq!(
                    original.reg(reg),
                    braided.reg(reg),
                    "{}: register {reg} diverged",
                    w.name
                );
            }
        }
        // Memory is architectural state in both machines: sample the data
        // segments.
        for seg in &w.program.data {
            for off in (0..seg.bytes.len() as u64).step_by(1024) {
                let addr = seg.base + off;
                assert_eq!(
                    original.mem.read_u64(addr),
                    braided.mem.read_u64(addr),
                    "{}: memory at {addr:#x} diverged",
                    w.name
                );
            }
        }
    }
}

#[test]
fn braid_statistics_stay_in_paper_territory() {
    for w in suite(SCALE) {
        let t = translate(&w.program, &TranslatorConfig::default()).unwrap();
        let s = &t.stats;
        assert!(
            s.braids_per_block.mean() >= 1.0 && s.braids_per_block.mean() < 12.0,
            "{}: braids/block {}",
            w.name,
            s.braids_per_block.mean()
        );
        assert!(s.size.mean() >= 1.0 && s.size.mean() < 20.0, "{}: size", w.name);
        assert!(s.width.mean() >= 1.0 && s.width.mean() < 2.5, "{}: width", w.name);
        assert!(
            s.size_cdf_at(32) > 0.97,
            "{}: paper §4.3 says 99% of braids have <= 32 instructions, got {:.3}",
            w.name,
            s.size_cdf_at(32)
        );
        // Braid partition tiles the program.
        let total: u32 = t.braids.iter().map(|d| d.len).sum();
        assert_eq!(total as usize, t.program.len(), "{}: braids tile the program", w.name);
    }
}

#[test]
fn four_cores_retire_everything_and_order_sanely() {
    // A representative subset keeps this test fast in debug builds.
    for name in ["gcc", "mcf", "swim", "gzip"] {
        let w = braid::workloads::by_name(name, SCALE).unwrap();
        let mut m = Machine::new(&w.program);
        let trace = m.run(&w.program, w.fuel).unwrap();
        let t = translate(&w.program, &TranslatorConfig::default()).unwrap();
        let mut mb = Machine::new(&t.program);
        let braid_trace = mb.run(&t.program, w.fuel).unwrap();

        let ooo = OooCore::new(OooConfig::paper_8wide()).run(&w.program, &trace).expect("runs");
        let io = InOrderCore::new(InOrderConfig::paper_8wide()).run(&w.program, &trace).expect("runs");
        let dep = DepSteerCore::new(DepConfig::paper_8wide()).run(&w.program, &trace).expect("runs");
        let braid = BraidCore::new(BraidConfig::paper_default()).run(&t.program, &braid_trace).expect("runs");

        for (label, r) in [("ooo", &ooo), ("io", &io), ("dep", &dep), ("braid", &braid)] {
            assert_eq!(r.instructions, trace.len() as u64, "{name}/{label} retires all");
            assert!(r.cycles >= trace.len() as u64 / 8, "{name}/{label}: cycles below width bound");
        }
        // Paradigm ordering (with slack for model noise): in-order is the
        // floor, out-of-order the ceiling.
        assert!(io.ipc() <= ooo.ipc() * 1.02, "{name}: io {} vs ooo {}", io.ipc(), ooo.ipc());
        assert!(braid.ipc() >= io.ipc() * 0.9, "{name}: braid {} vs io {}", braid.ipc(), io.ipc());
        assert!(braid.ipc() <= ooo.ipc() * 1.1, "{name}: braid {} vs ooo {}", braid.ipc(), ooo.ipc());
    }
}

#[test]
fn sweep_aggregate_is_byte_identical_across_thread_counts() {
    use braid::sweep::{aggregate, run_sweep, SweepSpec};

    // Kernels keep this cheap; all four cores exercise every run path.
    let mut spec = SweepSpec::new("e2e-determinism");
    spec.workloads = vec!["dot_product".into(), "crc_mix".into()];

    let docs: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let run = run_sweep(&spec, threads, None, false)
                .unwrap_or_else(|e| panic!("{threads}-thread sweep failed: {e}"));
            assert_eq!(run.reused, 0);
            aggregate(&run).to_string()
        })
        .collect();

    assert_eq!(docs[0], docs[1], "1-thread and 2-thread aggregates differ");
    assert_eq!(docs[0], docs[2], "1-thread and 8-thread aggregates differ");
    // 2 workloads × 4 cores, every point successful.
    assert!(docs[0].contains("\"grid_points\": 8"));
    assert!(docs[0].contains("\"completed\": 8"));
    assert!(!docs[0].contains("\"status\": \"error\""));
    // The non-deterministic host clock must never leak into the document.
    assert!(!docs[0].contains("host_nanos"));
}

#[test]
fn checkpoint_state_is_smaller_on_the_braid_machine() {
    let w = braid::workloads::by_name("perlbmk", SCALE).unwrap();
    let mut m = Machine::new(&w.program);
    let trace = m.run(&w.program, w.fuel).unwrap();
    let t = translate(&w.program, &TranslatorConfig::default()).unwrap();
    let mut mb = Machine::new(&t.program);
    let braid_trace = mb.run(&t.program, w.fuel).unwrap();

    let ooo = OooCore::new(OooConfig::paper_8wide()).run(&w.program, &trace).expect("runs");
    let braid = BraidCore::new(BraidConfig::paper_default()).run(&t.program, &braid_trace).expect("runs");
    // Paper §3.4: braid checkpoints exclude internal values.
    assert!(braid.checkpoint_words * 4 <= ooo.checkpoint_words);
}
