//! The trace-ingestion contract, end to end: recorded traces for the
//! compiled loop-nest kernels round-trip through both serializations,
//! replay deterministically on all four timing cores (byte-identical
//! cycle digests across runs), and a seeded corpus of hostile mutations
//! — truncations, bit flips, splices — always lands on a structured
//! error, never a panic or a silently-accepted corrupt file.

use braid::core::processor::CoreConfig;
use braid::core::config::{BraidConfig, DepConfig, InOrderConfig, OooConfig};
use braid::tracein::{cycle_digest, replay, TraceFile};
use braid::workloads::by_name_any;
use braid_prng::Rng;

/// Compiled loop-nest kernels the golden-trace lock covers.
const NESTS: [&str; 4] = ["ln_saxpy_u2", "ln_stencil_u1", "ln_matmul_n8", "ln_chains_c4_u2"];

fn record(name: &str) -> TraceFile {
    let w = by_name_any(name, 1.0).unwrap_or_else(|| panic!("{name} resolves"));
    TraceFile::record(&w.program, w.fuel).unwrap_or_else(|e| panic!("{name}: record: {e}"))
}

fn all_cores() -> [CoreConfig; 4] {
    [
        CoreConfig::InOrder(InOrderConfig::paper_8wide()),
        CoreConfig::Dep(DepConfig::paper_8wide()),
        CoreConfig::Ooo(OooConfig::paper_8wide()),
        CoreConfig::Braid(BraidConfig::paper_default()),
    ]
}

#[test]
fn recorded_nests_round_trip_and_replay_deterministically() {
    for name in NESTS {
        let file = record(name);

        let bin = file.to_binary().unwrap_or_else(|e| panic!("{name}: to_binary: {e}"));
        let back = TraceFile::from_binary(&bin).unwrap_or_else(|e| panic!("{name}: from_binary: {e}"));
        assert_eq!(back.trace.entries, file.trace.entries, "{name}: binary round-trip");

        let jsonl = file.to_jsonl().unwrap_or_else(|e| panic!("{name}: to_jsonl: {e}"));
        let back = TraceFile::from_jsonl(&jsonl).unwrap_or_else(|e| panic!("{name}: from_jsonl: {e}"));
        assert_eq!(back.trace.entries, file.trace.entries, "{name}: jsonl round-trip");

        let cores = all_cores();
        let d1 = cycle_digest(&file, &cores).unwrap_or_else(|e| panic!("{name}: digest: {e}"));
        let d2 = cycle_digest(&back, &cores).unwrap_or_else(|e| panic!("{name}: digest: {e}"));
        assert_eq!(d1, d2, "{name}: cycle digest must be byte-identical across runs");

        for core in &cores {
            let report = replay(&file, core).unwrap_or_else(|e| panic!("{name}: replay: {e}"));
            assert!(report.cycles > 0, "{name}:{}: replay simulates cycles", core.name());
        }
    }
}

#[test]
fn hostile_mutations_error_and_never_panic() {
    let file = record(NESTS[0]);
    let good = file.to_binary().expect("serializes");
    let other = record(NESTS[1]).to_binary().expect("serializes");
    let mut rng = Rng::seed_from_u64(0x7ace);

    // Every prefix truncation is rejected (the frame footer is load-bearing).
    for len in 0..good.len() {
        assert!(
            TraceFile::from_binary(&good[..len]).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }

    // Seeded single-bit flips anywhere in the file are caught by the
    // content digest before any field is trusted.
    for _ in 0..200 {
        let mut bytes = good.clone();
        let pos = (rng.next_u64() as usize) % bytes.len();
        bytes[pos] ^= 1 << (rng.next_u64() % 8);
        assert!(
            TraceFile::from_binary(&bytes).is_err(),
            "bit flip at {pos} must be rejected"
        );
    }

    // Seeded splices of two valid files never produce a valid third.
    for _ in 0..100 {
        let cut_a = (rng.next_u64() as usize) % good.len();
        let cut_b = (rng.next_u64() as usize) % other.len();
        let mut spliced = good[..cut_a].to_vec();
        spliced.extend_from_slice(&other[cut_b..]);
        if spliced == good || spliced == other {
            continue;
        }
        assert!(
            TraceFile::from_binary(&spliced).is_err(),
            "splice at ({cut_a},{cut_b}) must be rejected"
        );
    }
}
