//! Exit-code contract of the `braidc` CLI: `0` clean, `1` findings or
//! failure, `2` usage error — including the `--deny-warnings` promotion of
//! a warnings-only report to exit `1`, for `check` and `build` alike.

use std::path::PathBuf;
use std::process::Command;

use braid::isa::{container, BraidBits, Inst, Opcode, Program, Reg};

fn braidc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_braidc"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("braidc-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn r(n: u8) -> Reg {
    Reg::int(n).expect("in range")
}

/// An annotated program whose only finding is the BC006 warning: the `I`
/// bit is set but nothing ever reads the internal copy.
fn warnings_only_program() -> Program {
    let mut add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).expect("shape");
    add.braid = BraidBits { start: true, t: [false, false], internal: true, external: true };
    let mut halt = Inst::halt();
    halt.braid = BraidBits::unannotated(false);
    Program::from_insts("warn-only", vec![add, halt])
}

/// An annotated program with a hard error: a block leader without `S`.
fn error_program() -> Program {
    let mut add = Inst::alu(Opcode::Add, r(1), r(2), r(3)).expect("shape");
    add.braid = BraidBits { start: false, t: [false, false], internal: false, external: true };
    let mut halt = Inst::halt();
    halt.braid = BraidBits::unannotated(false);
    Program::from_insts("bad-leader", vec![add, halt])
}

fn write_brisc(name: &str, p: &Program) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, container::to_bytes(p).expect("encodes")).expect("writes");
    path
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output().expect("braidc runs").status.code().expect("has exit code")
}

#[test]
fn check_clean_exits_zero() {
    assert_eq!(exit_code(braidc().args(["check", "@dot_product"])), 0);
}

#[test]
fn check_warnings_only_exits_zero_without_deny() {
    let path = write_brisc("warn.brisc", &warnings_only_program());
    let out = braidc().args(["check", path.to_str().unwrap()]).output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BC006"), "expected a BC006 warning, got:\n{text}");
    assert!(!text.contains("error["), "must be warnings-only, got:\n{text}");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn deny_warnings_promotes_warnings_to_exit_one() {
    let path = write_brisc("warn-deny.brisc", &warnings_only_program());
    assert_eq!(
        exit_code(braidc().args(["check", path.to_str().unwrap(), "--deny-warnings"])),
        1
    );
}

#[test]
fn check_errors_exit_one() {
    let path = write_brisc("error.brisc", &error_program());
    assert_eq!(exit_code(braidc().args(["check", path.to_str().unwrap()])), 1);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(exit_code(&mut braidc()), 2);
    assert_eq!(exit_code(braidc().args(["check", "@dot_product", "--bogus"])), 2);
    assert_eq!(exit_code(braidc().args(["frobnicate", "@dot_product"])), 2);
}

#[test]
fn missing_input_exits_one() {
    assert_eq!(exit_code(braidc().args(["check", "@nonesuch_kernel"])), 1);
}

fn write_bl(name: &str, source: &str) -> PathBuf {
    let path = tmp(name);
    std::fs::write(&path, source).expect("writes");
    path
}

#[test]
fn build_clean_exits_zero_and_emits_a_check_clean_container() {
    let src = write_bl(
        "ok.bl",
        "array a[8] = [1, 2, 3];\nlet s = 0;\nfor i in 0..8 { s = s + a[i]; }\na[0] = s;\n",
    );
    let out = tmp("ok.brisc");
    let built = braidc()
        .args(["build", src.to_str().unwrap(), "--emit", out.to_str().unwrap()])
        .output()
        .expect("runs");
    assert_eq!(built.status.code(), Some(0), "{}", String::from_utf8_lossy(&built.stderr));
    // The emitted container passes the checker standalone: annotated
    // clean by construction.
    assert_eq!(exit_code(braidc().args(["check", out.to_str().unwrap()])), 0);
}

#[test]
fn build_diagnostics_exit_one() {
    let src = write_bl("bad.bl", "let s = nosuch + 1;\n");
    let out = braidc().args(["build", src.to_str().unwrap()]).output().expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("BL00"), "expected a BL diagnostic on stderr, got:\n{text}");
}

#[test]
fn build_deny_warnings_promotes_unused_binding_to_exit_one() {
    let src = write_bl("warn.bl", "array a[4];\nlet unused = 3;\na[0] = 1;\n");
    assert_eq!(exit_code(braidc().args(["build", src.to_str().unwrap()])), 0);
    assert_eq!(
        exit_code(braidc().args(["build", src.to_str().unwrap(), "--deny-warnings"])),
        1
    );
}

#[test]
fn build_usage_errors_exit_two() {
    assert_eq!(exit_code(braidc().args(["build"])), 2);
    let src = write_bl("flags.bl", "array a[4];\na[0] = 1;\n");
    assert_eq!(exit_code(braidc().args(["build", src.to_str().unwrap(), "--bogus"])), 2);
}

#[test]
fn bound_clean_exits_zero_and_verifies() {
    let out = braidc().args(["bound", "@dot_product", "--verify"]).output().expect("runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{text}");
    assert_eq!(text.matches(": sound (").count(), 4, "all four cores verified:\n{text}");
}

#[test]
fn opt_exits_zero_and_never_loses_to_canonical() {
    let out = braidc().args(["-O", "@dot_product", "--json"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = braid::sweep::json::parse(&text).expect("valid json");
    let winner_cycles = doc
        .get("candidates")
        .and_then(braid::sweep::Json::as_arr)
        .and_then(|cands| {
            let winner = doc.get("winner")?.as_str()?;
            cands
                .iter()
                .find(|c| c.get("name").and_then(braid::sweep::Json::as_str) == Some(winner))?
                .get("cycles")?
                .as_u64()
        })
        .expect("winner cycles");
    let canonical = doc.get("canonical_cycles").and_then(braid::sweep::Json::as_u64).unwrap();
    let bound = doc.get("bound_cycles").and_then(braid::sweep::Json::as_u64).unwrap();
    assert!(winner_cycles <= canonical, "winner {winner_cycles} > canonical {canonical}");
    assert!(bound <= winner_cycles, "bound {bound} > winner {winner_cycles}");
}
