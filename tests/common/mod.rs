//! Shared PRNG program generators for the property-based test suites
//! (`tests/properties.rs`, `tests/functional_tier.rs`).
//!
//! The generators draw from the in-repo deterministic PRNG (`braid-prng`)
//! rather than proptest, so the suites run in hermetic environments with
//! no registry access. Each caller iterates a fixed number of seeded
//! cases; failures print the offending seed, which reproduces the case
//! exactly.

#![allow(dead_code)] // each test crate compiles this module independently

use braid::isa::{AliasClass, Inst, Opcode, Program, Reg};
use braid_prng::Rng;

pub fn gen_int_reg(rng: &mut Rng) -> Reg {
    Reg::int(rng.gen_range(0..32u8)).expect("in range")
}

pub fn gen_fp_reg(rng: &mut Rng) -> Reg {
    Reg::float(rng.gen_range(0..32u8)).expect("in range")
}

/// Random programs must not lie to the compiler: alias tags assert
/// disjointness the profiler would have verified, but random base
/// registers can collide, so everything stays [`AliasClass::Unknown`]
/// (conservative and always truthful).
pub fn gen_alias(_rng: &mut Rng) -> AliasClass {
    AliasClass::Unknown
}

/// Any validly-shaped non-control instruction. Weights mirror the old
/// proptest strategy: 6 alu / 6 alui / 2 shift / 3 fp / 3 load / 3 store /
/// 1 nop.
pub fn gen_straightline_inst(rng: &mut Rng) -> Inst {
    match rng.gen_range(0..24u32) {
        0..=5 => {
            let op = *rng.choose(&[
                Opcode::Add,
                Opcode::Sub,
                Opcode::Mul,
                Opcode::And,
                Opcode::Or,
                Opcode::Xor,
                Opcode::Andnot,
                Opcode::Cmpeq,
                Opcode::Cmplt,
                Opcode::Cmovne,
            ]);
            let (a, b, d) = (gen_int_reg(rng), gen_int_reg(rng), gen_int_reg(rng));
            Inst::alu(op, a, b, d).expect("valid shape")
        }
        6..=11 => {
            let op = *rng.choose(&[
                Opcode::Addi,
                Opcode::Subi,
                Opcode::Andi,
                Opcode::Ori,
                Opcode::Xori,
                Opcode::Cmpeqi,
                Opcode::Zapnot,
                Opcode::Cmovnei,
            ]);
            let (s, d) = (gen_int_reg(rng), gen_int_reg(rng));
            Inst::alui(op, s, rng.gen_range(-1000..1000i32), d).expect("valid shape")
        }
        12..=13 => {
            let op = *rng.choose(&[Opcode::Slli, Opcode::Srli, Opcode::Srai]);
            let (s, d) = (gen_int_reg(rng), gen_int_reg(rng));
            Inst::alui(op, s, rng.gen_range(0..64i32), d).expect("valid shape")
        }
        14..=16 => {
            let op = *rng.choose(&[Opcode::Fadd, Opcode::Fsub, Opcode::Fmul]);
            let (a, b, d) = (gen_fp_reg(rng), gen_fp_reg(rng), gen_fp_reg(rng));
            Inst::alu(op, a, b, d).expect("valid shape")
        }
        // Loads/stores over a small aligned pool so loads observe stores.
        17..=19 => {
            let (base, d) = (gen_int_reg(rng), gen_int_reg(rng));
            let slot = rng.gen_range(0..32i32);
            Inst::load(Opcode::Ldq, base, slot * 8, d, gen_alias(rng)).expect("valid shape")
        }
        20..=22 => {
            let (v, base) = (gen_int_reg(rng), gen_int_reg(rng));
            let slot = rng.gen_range(0..32i32);
            Inst::store(Opcode::Stq, v, base, slot * 8, gen_alias(rng)).expect("valid shape")
        }
        _ => Inst::nop(),
    }
}

/// A random straight-line program with a few forward branches (so the CFG
/// has multiple blocks), ending in `halt`. Retries until the program
/// validates (random branch splices almost always do).
pub fn gen_program(rng: &mut Rng) -> Program {
    loop {
        let len = rng.gen_range(4..80usize);
        let mut insts: Vec<Inst> = (0..len).map(|_| gen_straightline_inst(rng)).collect();
        // Splice in forward conditional branches.
        for _ in 0..rng.gen_range(0..4usize) {
            let at = rng.gen_range(0..76usize).min(insts.len().saturating_sub(1));
            let skip = rng.gen_range(1..8u32);
            let target = (at as u32 + 1 + skip).min(insts.len() as u32);
            let src = Reg::int(rng.gen_range(0..32u8)).expect("in range");
            insts.insert(at, Inst::branch(Opcode::Bne, src, target + 1).expect("shape"));
        }
        // Force every branch strictly forward (insertion shifts indices,
        // which could otherwise create loops) and inside the program.
        let halt_at = insts.len() as u32;
        #[allow(clippy::needless_range_loop)] // set_target needs &mut insts[i]
        for i in 0..insts.len() {
            if let Some(t) = insts[i].target() {
                insts[i].set_target(t.max(i as u32 + 1).min(halt_at));
            }
        }
        insts.push(Inst::halt());
        let mut p = Program::from_insts("prop", insts);
        // A small data pool; base registers hold small values, so all
        // accesses land in a low page.
        p.data.push(braid::isa::DataSegment::from_words(
            0,
            &(0..128).map(|i| i * 17 + 3).collect::<Vec<u64>>(),
        ));
        if p.validate().is_ok() {
            return p;
        }
    }
}
