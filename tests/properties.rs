//! Property-based tests over random instructions and random programs.
//!
//! The central property is the translation-correctness theorem of the
//! braid paradigm: for *any* valid program, the braid-annotated, reordered
//! program computes the same architectural results (externally-written
//! registers and memory) as the original.
//!
//! The generators draw from the in-repo deterministic PRNG (`braid-prng`)
//! rather than proptest, so the suite runs in hermetic environments with no
//! registry access. Each property checks a fixed number of seeded cases;
//! failures print the offending seed, which reproduces the case exactly.

use braid::compiler::{translate, TranslatorConfig};
use braid::core::functional::Machine;
use braid::isa::{decode, encode, Reg};
use braid_prng::Rng;

mod common;
use common::{gen_program, gen_straightline_inst};

const CASES: u64 = 96;

/// Runs `check` for [`CASES`] seeded cases, tagging failures with the seed.
fn for_each_case(name: &str, mut check: impl FnMut(&mut Rng)) {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed for seed {seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

// ---- properties ----

/// decode(encode(i)) is the identity on valid instructions.
#[test]
fn encoding_round_trips() {
    for_each_case("encoding_round_trips", |rng| {
        for _ in 0..16 {
            let inst = gen_straightline_inst(rng);
            let word = encode(&inst).expect("valid instructions encode");
            assert_eq!(decode(word).expect("decodes"), inst);
        }
    });
}

/// The assembler parses what the disassembler prints.
#[test]
fn disassembly_round_trips() {
    for_each_case("disassembly_round_trips", |rng| {
        let p = gen_program(rng);
        let text = braid::isa::asm::disassemble(&p);
        let back = braid::isa::asm::assemble(&text).expect("reassembles");
        assert_eq!(back.insts, p.insts);
    });
}

/// Translation is a permutation within blocks that preserves live
/// architectural state.
#[test]
fn translation_preserves_semantics() {
    for_each_case("translation_preserves_semantics", |rng| {
        let p = gen_program(rng);
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        assert_eq!(t.program.len(), p.len());
        assert_eq!(t.program.opcode_histogram(), p.opcode_histogram());

        let fuel = 100_000;
        let mut original = Machine::new(&p);
        original.run(&p, fuel).expect("original runs");
        let mut braided = Machine::new(&t.program);
        braided.run(&t.program, fuel).expect("translated runs");

        for reg in Reg::all() {
            let writers: Vec<_> = t
                .program
                .insts
                .iter()
                .filter(|i| i.written_reg() == Some(reg))
                .collect();
            // Registers also written internally may end with a discarded
            // (dead) external value; the paradigm only guarantees values
            // that can still be read. Purely-external registers must match.
            let purely_external =
                !writers.is_empty() && writers.iter().all(|i| i.braid.external && !i.braid.internal);
            if purely_external {
                assert_eq!(original.reg(reg), braided.reg(reg), "register {reg} diverged");
            }
        }
        for addr in (0..1024u64).step_by(8) {
            assert_eq!(original.mem.read_u64(addr), braided.mem.read_u64(addr));
        }
    });
}

/// Structural braid invariants: the partition tiles each block, `S`
/// bits mark exactly the braid starts, and every `T`-annotated source
/// was produced internally earlier in the same braid.
#[test]
fn braid_partition_invariants() {
    for_each_case("braid_partition_invariants", |rng| {
        let p = gen_program(rng);
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        let total: u32 = t.braids.iter().map(|d| d.len).sum();
        assert_eq!(total as usize, t.program.len());
        for (i, desc) in t.braids.iter().enumerate() {
            assert!(desc.len >= 1);
            // `internals` counts all internal values of the braid; the
            // 8-register bound applies to the *simultaneous* working set,
            // which `translate` enforces via its internal allocation pass.
            assert!(desc.internals <= desc.len);
            for (k, idx) in (desc.start..desc.start + desc.len).enumerate() {
                assert_eq!(t.braid_of_inst[idx as usize], i as u32);
                let inst = &t.program.insts[idx as usize];
                assert_eq!(inst.braid.start, k == 0);
                for (slot, &is_t) in inst.braid.t.iter().enumerate() {
                    if !is_t {
                        continue;
                    }
                    let reg = inst.srcs[slot].expect("T implies a source");
                    let produced = (desc.start..idx).rev().any(|j| {
                        t.program.insts[j as usize].written_reg() == Some(reg)
                            && t.program.insts[j as usize].braid.internal
                    });
                    assert!(produced, "T source {reg} at {idx} has no internal producer");
                }
            }
        }
    });
}

/// The static braid-contract checker accepts every translator output:
/// program flow, reordering legality, and descriptor metadata are all
/// clean — no errors *and* no warnings — for 200 random programs.
#[test]
fn translation_is_always_check_clean() {
    use braid::check::CheckConfig;

    const CHECK_CASES: u64 = 200;
    for seed in 0..CHECK_CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let p = gen_program(&mut rng);
        let config = TranslatorConfig { self_check: false, ..Default::default() };
        let t = translate(&p, &config).expect("translates");
        let report = t.check(&p, &CheckConfig { max_internal_regs: config.max_internal_regs });
        assert!(report.is_clean(), "seed {seed}: translator output flagged:\n{report}");
    }
}

/// Every dynamic instruction retires on the braid machine, and the
/// cycle count respects the width bound.
#[test]
fn braid_core_retires_random_programs() {
    use braid::core::config::BraidConfig;
    use braid::core::cores::BraidCore;
    for_each_case("braid_core_retires_random_programs", |rng| {
        let p = gen_program(rng);
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 100_000).expect("runs");
        let mut cfg = BraidConfig::paper_default();
        cfg.common = cfg.common.perfect();
        let r = BraidCore::new(cfg).run(&t.program, &trace).expect("runs");
        assert_eq!(r.instructions, trace.len() as u64);
        assert!(r.cycles as usize >= trace.len() / 8);
    });
}

/// Differential test against the co-simulation oracle: for ≥200
/// PRNG-generated programs, the braid pipeline (translate → functional →
/// timing) runs in lockstep with the functional golden model and finishes
/// with no divergence in registers, memory, or retirement counts. Every
/// tenth case additionally runs all four timing cores through the oracle.
///
/// This is a different check from [`translation_preserves_semantics`]:
/// the oracle compares state *during* execution (committed stores, per-
/// instruction results), not just at the end, so reordering bugs that
/// cancel out by halt still get caught.
#[test]
fn differential_oracle_finds_no_divergence() {
    use braid_verify::oracle::{check_all_cores, check_core, CoreKind};

    const DIFF_CASES: u64 = 200;
    const FUEL: u64 = 100_000;
    for seed in 0..DIFF_CASES {
        // A seed stream disjoint from the other properties' `0..CASES`.
        let mut rng = Rng::seed_from_u64(0xD1FF_0000 + seed);
        let p = gen_program(&mut rng);
        let name = format!("diff-seed-{seed}");
        let report = check_core(CoreKind::Braid, &p, &name, FUEL)
            .unwrap_or_else(|e| panic!("differential oracle failed for seed {seed}:\n{e}"));
        assert!(report.instructions > 0, "seed {seed}: nothing retired");
        if seed % 10 == 0 {
            check_all_cores(&p, &name, FUEL)
                .unwrap_or_else(|e| panic!("all-core oracle failed for seed {seed}:\n{e}"));
        }
    }
}

// ---- Memory edge cases (paper-independent substrate properties) ----

/// Sparse-page memory: writes that straddle page boundaries, wrap the
/// address space, or interleave at random must all read back exactly, and
/// untouched bytes must stay zero.
mod memory_properties {
    use super::for_each_case;
    use braid::core::functional::Memory;

    const PAGE: u64 = 4096;

    #[test]
    fn page_boundary_straddles_round_trip() {
        for_each_case("page_boundary_straddles_round_trip", |rng| {
            let mut mem = Memory::new();
            // A write beginning within 7 bytes of a page boundary spans
            // two pages; both halves must land.
            let page = rng.gen_range(0..1024u64);
            let offset = PAGE - rng.gen_range(1..8u64);
            let addr = page * PAGE + offset;
            let value = rng.next_u64();
            mem.write_u64(addr, value);
            assert_eq!(mem.read_u64(addr), value);
            // Byte-level view agrees with the little-endian encoding.
            for (i, &b) in value.to_le_bytes().iter().enumerate() {
                assert_eq!(mem.read_u8(addr + i as u64), b);
            }
        });
    }

    #[test]
    fn address_space_wraps() {
        for_each_case("address_space_wraps", |rng| {
            let mut mem = Memory::new();
            // The last `wrap` bytes of the 8-byte write land at the bottom
            // of the address space.
            let wrap = rng.gen_range(1..8u64);
            let start = 0u64.wrapping_sub(8 - wrap);
            let value = rng.next_u64();
            mem.write_u64(start, value);
            assert_eq!(mem.read_u64(start), value, "wrap at {start:#x}");
            let wrapped = start.wrapping_add(7);
            assert!(wrapped < 8, "picked a wrapping start");
            assert_eq!(mem.read_u8(wrapped), value.to_le_bytes()[7]);
        });
    }

    #[test]
    fn random_writes_match_a_shadow_model() {
        for_each_case("random_writes_match_a_shadow_model", |rng| {
            let mut mem = Memory::new();
            let mut shadow: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
            for _ in 0..64 {
                // Cluster addresses around page boundaries and the wrap
                // point, where the bugs would live.
                let base = match rng.gen_range(0..3u32) {
                    0 => rng.gen_range(0..4 * PAGE),
                    1 => rng.gen_range(1..16u64) * PAGE - rng.gen_range(0..16u64),
                    _ => u64::MAX - rng.gen_range(0..16u64),
                };
                let len = rng.gen_range(1..9usize);
                let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
                mem.write_bytes(base, &bytes);
                for (i, &b) in bytes.iter().enumerate() {
                    shadow.insert(base.wrapping_add(i as u64), b);
                }
            }
            for (&addr, &b) in &shadow {
                assert_eq!(mem.read_u8(addr), b, "at {addr:#x}");
            }
        });
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        for_each_case("unwritten_memory_reads_zero", |rng| {
            let mem = Memory::new();
            let addr = rng.next_u64();
            assert_eq!(mem.read_u8(addr), 0);
            assert_eq!(mem.read_u64(addr), 0);
            let mut mem = Memory::new();
            mem.write_u8(addr, 0xAB);
            // A single write must not bleed into neighbours.
            assert_eq!(mem.read_u8(addr.wrapping_add(1)), 0);
            assert_eq!(mem.read_u8(addr.wrapping_sub(1)), 0);
        });
    }

    #[test]
    fn read_write_bytes_round_trip_every_width() {
        for_each_case("read_write_bytes_round_trip_every_width", |rng| {
            let mut mem = Memory::new();
            let addr = rng.next_u64();
            let v32 = rng.next_u64() as u32;
            mem.write_bytes(addr, &v32.to_le_bytes());
            assert_eq!(mem.read_u32(addr), v32);
            let v64 = rng.next_u64();
            mem.write_u64(addr, v64);
            assert_eq!(mem.read_u64(addr), v64);
            let raw: [u8; 8] = mem.read_bytes(addr);
            assert_eq!(raw, v64.to_le_bytes());
        });
    }
}

/// The one-call pipelines return typed `RunError`s — never panic — on
/// malformed or degenerate inputs.
mod run_error_properties {
    use braid::core::config::{BraidConfig, OooConfig};
    use braid::core::processor::{run_braid, run_braid_with_translation, run_ooo, RunError};
    use braid::isa::{Inst, Program};

    #[test]
    fn empty_program_is_a_typed_error() {
        let p = Program::from_insts("empty", vec![]);
        match run_ooo(&p, &OooConfig::paper_8wide(), 1_000) {
            Err(RunError::Exec(_)) => {}
            other => panic!("expected typed exec error, got {other:?}"),
        }
        match run_braid_with_translation(&p, &BraidConfig::paper_default(), 1_000) {
            Err(_) => {}
            Ok(_) => panic!("empty program must not simulate"),
        }
    }

    #[test]
    fn missing_halt_is_a_typed_error() {
        let p = Program::from_insts("no-halt", vec![Inst::nop(), Inst::nop()]);
        match run_braid(&p, &BraidConfig::paper_default(), 1_000) {
            Err(RunError::Exec(_) | RunError::Translate(_)) => {}
            other => panic!("expected typed error, got {other:?}"),
        }
    }

    #[test]
    fn branch_out_of_range_is_a_typed_error() {
        let mut br = Inst::br(1_000_000);
        br.braid = braid::isa::BraidBits::unannotated(false);
        let p = Program::from_insts("wild-branch", vec![br, Inst::halt()]);
        match run_ooo(&p, &OooConfig::paper_8wide(), 1_000) {
            Err(RunError::Exec(_)) => {}
            other => panic!("expected typed exec error, got {other:?}"),
        }
    }

    #[test]
    fn bad_config_is_a_typed_sim_error() {
        let p = braid::isa::asm::assemble("addi r0, #1, r1\nhalt").unwrap();
        let mut cfg = OooConfig::paper_8wide();
        cfg.schedulers = 0;
        match run_ooo(&p, &cfg, 1_000) {
            Err(RunError::Sim(_)) => {}
            other => panic!("expected typed sim error, got {other:?}"),
        }
    }
}
