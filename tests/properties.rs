//! Property-based tests over random instructions and random programs.
//!
//! The central property is the translation-correctness theorem of the
//! braid paradigm: for *any* valid program, the braid-annotated, reordered
//! program computes the same architectural results (externally-written
//! registers and memory) as the original.

use braid::compiler::{translate, TranslatorConfig};
use braid::core::functional::Machine;
use braid::isa::{decode, encode, AliasClass, Inst, Opcode, Program, Reg};
use proptest::prelude::*;

// ---- strategies ----

fn arb_int_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::int(n).expect("in range"))
}

fn arb_fp_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::float(n).expect("in range"))
}

/// Random programs must not lie to the compiler: alias tags assert
/// disjointness the profiler would have verified, but random base
/// registers can collide, so everything stays [`AliasClass::Unknown`]
/// (conservative and always truthful).
fn arb_alias() -> impl Strategy<Value = AliasClass> {
    Just(AliasClass::Unknown)
}

/// Any validly-shaped non-control instruction.
fn arb_straightline_inst() -> impl Strategy<Value = Inst> {
    let alu2 = (
        prop_oneof![
            Just(Opcode::Add),
            Just(Opcode::Sub),
            Just(Opcode::Mul),
            Just(Opcode::And),
            Just(Opcode::Or),
            Just(Opcode::Xor),
            Just(Opcode::Andnot),
            Just(Opcode::Cmpeq),
            Just(Opcode::Cmplt),
            Just(Opcode::Cmovne),
        ],
        arb_int_reg(),
        arb_int_reg(),
        arb_int_reg(),
    )
        .prop_map(|(op, a, b, d)| Inst::alu(op, a, b, d).expect("valid shape"));
    let alui = (
        prop_oneof![
            Just(Opcode::Addi),
            Just(Opcode::Subi),
            Just(Opcode::Andi),
            Just(Opcode::Ori),
            Just(Opcode::Xori),
            Just(Opcode::Cmpeqi),
            Just(Opcode::Zapnot),
            Just(Opcode::Cmovnei),
        ],
        arb_int_reg(),
        -1000i32..1000,
        arb_int_reg(),
    )
        .prop_map(|(op, s, imm, d)| Inst::alui(op, s, imm, d).expect("valid shape"));
    let shift = (
        prop_oneof![Just(Opcode::Slli), Just(Opcode::Srli), Just(Opcode::Srai)],
        arb_int_reg(),
        0i32..64,
        arb_int_reg(),
    )
        .prop_map(|(op, s, imm, d)| Inst::alui(op, s, imm, d).expect("valid shape"));
    let fp = (
        prop_oneof![Just(Opcode::Fadd), Just(Opcode::Fsub), Just(Opcode::Fmul)],
        arb_fp_reg(),
        arb_fp_reg(),
        arb_fp_reg(),
    )
        .prop_map(|(op, a, b, d)| Inst::alu(op, a, b, d).expect("valid shape"));
    // Loads/stores over a small aligned pool so loads observe stores.
    let load = (arb_int_reg(), 0i32..32, arb_int_reg(), arb_alias())
        .prop_map(|(base, slot, d, alias)| {
            Inst::load(Opcode::Ldq, base, slot * 8, d, alias).expect("valid shape")
        });
    let store = (arb_int_reg(), arb_int_reg(), 0i32..32, arb_alias())
        .prop_map(|(v, base, slot, alias)| {
            Inst::store(Opcode::Stq, v, base, slot * 8, alias).expect("valid shape")
        });
    prop_oneof![6 => alu2, 6 => alui, 2 => shift, 3 => fp, 3 => load, 3 => store, 1 => Just(Inst::nop())]
}

/// A random straight-line program with a few forward branches (so the CFG
/// has multiple blocks), ending in `halt`.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_straightline_inst(), 4..80),
        proptest::collection::vec((0usize..76, 1u32..8, 0u8..32), 0..4),
    )
        .prop_map(|(mut insts, branches)| {
            // Splice in forward conditional branches.
            for (at, skip, reg) in branches {
                let at = at.min(insts.len().saturating_sub(1));
                let target = (at as u32 + 1 + skip).min(insts.len() as u32);
                let src = Reg::int(reg).expect("in range");
                insts.insert(at, Inst::branch(Opcode::Bne, src, target + 1).expect("shape"));
            }
            // Force every branch strictly forward (insertion shifts indices,
            // which could otherwise create loops) and inside the program.
            let halt_at = insts.len() as u32;
            #[allow(clippy::needless_range_loop)] // set_target needs &mut insts[i]
            for i in 0..insts.len() {
                if let Some(t) = insts[i].target() {
                    insts[i].set_target(t.max(i as u32 + 1).min(halt_at));
                }
            }
            insts.push(Inst::halt());
            let mut p = Program::from_insts("prop", insts);
            // A small data pool; base registers hold small values, so all
            // accesses land in a low page.
            p.data.push(braid::isa::DataSegment::from_words(
                0,
                &(0..128).map(|i| i * 17 + 3).collect::<Vec<u64>>(),
            ));
            p
        })
        .prop_filter("program validates", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// decode(encode(i)) is the identity on valid instructions.
    #[test]
    fn encoding_round_trips(inst in arb_straightline_inst()) {
        let word = encode(&inst).expect("valid instructions encode");
        prop_assert_eq!(decode(word).expect("decodes"), inst);
    }

    /// The assembler parses what the disassembler prints.
    #[test]
    fn disassembly_round_trips(p in arb_program()) {
        let text = braid::isa::asm::disassemble(&p);
        let back = braid::isa::asm::assemble(&text).expect("reassembles");
        prop_assert_eq!(back.insts, p.insts);
    }

    /// Translation is a permutation within blocks that preserves live
    /// architectural state.
    #[test]
    fn translation_preserves_semantics(p in arb_program()) {
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        prop_assert_eq!(t.program.len(), p.len());
        prop_assert_eq!(t.program.opcode_histogram(), p.opcode_histogram());

        let fuel = 100_000;
        let mut original = Machine::new(&p);
        original.run(&p, fuel).expect("original runs");
        let mut braided = Machine::new(&t.program);
        braided.run(&t.program, fuel).expect("translated runs");

        for reg in Reg::all() {
            let writers: Vec<_> = t
                .program
                .insts
                .iter()
                .filter(|i| i.written_reg() == Some(reg))
                .collect();
            // Registers also written internally may end with a discarded
            // (dead) external value; the paradigm only guarantees values
            // that can still be read. Purely-external registers must match.
            let purely_external =
                !writers.is_empty() && writers.iter().all(|i| i.braid.external && !i.braid.internal);
            if purely_external {
                prop_assert_eq!(original.reg(reg), braided.reg(reg), "register {} diverged", reg);
            }
        }
        for addr in (0..1024u64).step_by(8) {
            prop_assert_eq!(original.mem.read_u64(addr), braided.mem.read_u64(addr));
        }
    }

    /// Structural braid invariants: the partition tiles each block, `S`
    /// bits mark exactly the braid starts, and every `T`-annotated source
    /// was produced internally earlier in the same braid.
    #[test]
    fn braid_partition_invariants(p in arb_program()) {
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        let total: u32 = t.braids.iter().map(|d| d.len).sum();
        prop_assert_eq!(total as usize, t.program.len());
        for (i, desc) in t.braids.iter().enumerate() {
            prop_assert!(desc.len >= 1);
            // `internals` counts all internal values of the braid; the
            // 8-register bound applies to the *simultaneous* working set,
            // which `translate` enforces via its internal allocation pass.
            prop_assert!(desc.internals <= desc.len);
            for (k, idx) in (desc.start..desc.start + desc.len).enumerate() {
                prop_assert_eq!(t.braid_of_inst[idx as usize], i as u32);
                let inst = &t.program.insts[idx as usize];
                prop_assert_eq!(inst.braid.start, k == 0);
                for (slot, &is_t) in inst.braid.t.iter().enumerate() {
                    if !is_t { continue; }
                    let reg = inst.srcs[slot].expect("T implies a source");
                    let produced = (desc.start..idx).rev().any(|j| {
                        t.program.insts[j as usize].written_reg() == Some(reg)
                            && t.program.insts[j as usize].braid.internal
                    });
                    prop_assert!(produced, "T source {} at {} has no internal producer", reg, idx);
                }
            }
        }
    }

    /// Every dynamic instruction retires on the braid machine, and the
    /// cycle count respects the width bound.
    #[test]
    fn braid_core_retires_random_programs(p in arb_program()) {
        use braid::core::config::BraidConfig;
        use braid::core::cores::BraidCore;
        let t = translate(&p, &TranslatorConfig::default()).expect("translates");
        let mut m = Machine::new(&t.program);
        let trace = m.run(&t.program, 100_000).expect("runs");
        let mut cfg = BraidConfig::paper_default();
        cfg.common = cfg.common.perfect();
        let r = BraidCore::new(cfg).run(&t.program, &trace);
        prop_assert!(!r.timed_out);
        prop_assert_eq!(r.instructions, trace.len() as u64);
        prop_assert!(r.cycles as usize >= trace.len() / 8);
    }
}
